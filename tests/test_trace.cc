/**
 * @file
 * Trace capture / replay tests: the hardened text parser (CRLF,
 * whitespace, comment-only files, every fatal() path), the binary
 * format and its converters, the streaming TraceStream reader, and
 * end-to-end runs of the system simulator on replayed traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "cpu/system_sim.hh"
#include "cpu/trace.hh"

namespace arcc
{
namespace
{

/** Unique temp-file path (ctest -j runs sibling tests concurrently). */
std::string
tempPath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("arcc_test_trace." + tag + "." +
             std::to_string(::getpid())))
        .string();
}

/** RAII deleter so failed assertions do not leak temp files. */
struct TempFile
{
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

std::vector<CoreWorkload::Access>
syntheticAccesses(int n, std::uint64_t seed)
{
    CoreWorkload wl(benchmarkProfile("swim"), 1ULL << 30, 0, seed);
    std::vector<CoreWorkload::Access> out;
    for (int i = 0; i < n; ++i)
        out.push_back(wl.next());
    return out;
}

void
expectSameAccesses(const std::vector<CoreWorkload::Access> &a,
                   const std::vector<CoreWorkload::Access> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].isWrite, b[i].isWrite) << i;
        EXPECT_EQ(a[i].instrGap, b[i].instrGap) << i;
    }
}

// --- text format -------------------------------------------------------

TEST(Trace, WriteParseRoundTrip)
{
    std::ostringstream out;
    TraceWriter writer(out);
    auto original = syntheticAccesses(500, 5);
    for (const auto &a : original)
        writer.append(a);
    EXPECT_EQ(writer.count(), 500u);

    std::istringstream in(out.str());
    expectSameAccesses(parseTrace(in), original);
}

TEST(Trace, CommentsAndBlankLinesAreSkipped)
{
    std::istringstream in(
        "# a comment\n\n1000 R 5\n# another\n2040 W 17\n");
    auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].addr, 0x1000u);
    EXPECT_FALSE(parsed[0].isWrite);
    EXPECT_EQ(parsed[0].instrGap, 5u);
    EXPECT_EQ(parsed[1].addr, 0x2040u);
    EXPECT_TRUE(parsed[1].isWrite);
}

TEST(Trace, ToleratesCrlfWhitespaceAndIndentedComments)
{
    // A Windows-edited trace: CRLF endings, trailing whitespace,
    // indented fields, whitespace-only lines, indented comments, and
    // tab separators all parse to the same accesses.
    std::istringstream in("1000 R 5\r\n"
                          "2040 W 17   \n"
                          "   \t \r\n"
                          "  # indented comment\r\n"
                          "\t3080\tr\t2\r\n"
                          "   40c0 w 9\n");
    auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), 4u);
    EXPECT_EQ(parsed[0].addr, 0x1000u);
    EXPECT_EQ(parsed[0].instrGap, 5u);
    EXPECT_EQ(parsed[1].addr, 0x2040u);
    EXPECT_TRUE(parsed[1].isWrite);
    EXPECT_EQ(parsed[2].addr, 0x3080u);
    EXPECT_FALSE(parsed[2].isWrite);
    EXPECT_EQ(parsed[3].addr, 0x40c0u);
    EXPECT_EQ(parsed[3].instrGap, 9u);
}

TEST(Trace, CommentOnlyFileParsesToNothing)
{
    std::istringstream in("# header\n\n   \n# only comments here\r\n");
    EXPECT_TRUE(parseTrace(in).empty());
}

TEST(TraceDeathTest, MalformedLinesAreFatal)
{
    std::istringstream bad1("zzz\n");
    EXPECT_EXIT(parseTrace(bad1), ::testing::ExitedWithCode(1),
                "malformed");
    std::istringstream bad2("1000 X 5\n");
    EXPECT_EXIT(parseTrace(bad2), ::testing::ExitedWithCode(1),
                "not R or W");
    std::istringstream bad3("zzz R 5\n");
    EXPECT_EXIT(parseTrace(bad3), ::testing::ExitedWithCode(1),
                "not a hex address");
    std::istringstream bad4("1000 R 5 junk\n");
    EXPECT_EXIT(parseTrace(bad4), ::testing::ExitedWithCode(1),
                "trailing garbage");
    std::istringstream bad5("1000 R -5\n");
    EXPECT_EXIT(parseTrace(bad5), ::testing::ExitedWithCode(1),
                "not an instruction gap");
    std::istringstream bad6("1000 R gap\n");
    EXPECT_EXIT(parseTrace(bad6), ::testing::ExitedWithCode(1),
                "not an instruction gap");
    // strtoull would silently *wrap* a signed address to a huge
    // value; the parser must reject it instead.
    std::istringstream bad7("-1000 R 5\n");
    EXPECT_EXIT(parseTrace(bad7), ::testing::ExitedWithCode(1),
                "not a hex address");
}

TEST(TraceDeathTest, WriteFailuresAreFatal)
{
    // A stream that went bad mid-capture (disk full) must be
    // diagnosed at the failing append, not discovered as a truncated
    // file at replay time.
    std::ostringstream text;
    TraceWriter tw(text);
    text.setstate(std::ios::badbit);
    EXPECT_EXIT(tw.append({}), ::testing::ExitedWithCode(1),
                "write failed");

    std::ostringstream bin;
    BinaryTraceWriter bw(bin);
    bin.setstate(std::ios::badbit);
    EXPECT_EXIT(bw.append({}), ::testing::ExitedWithCode(1),
                "write failed");

    EXPECT_EXIT(captureSyntheticTrace("swim", 1ULL << 30, 0, 1, 1000,
                                      "/nonexistent/capture.bin"),
                ::testing::ExitedWithCode(1), "cannot create");
}

TEST(TraceDeathTest, UnopenableFileIsFatal)
{
    EXPECT_EXIT(loadTrace("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceDeathTest, EmptyReplayIsFatal)
{
    EXPECT_EXIT(TraceReplay{{}}, ::testing::ExitedWithCode(1),
                "empty trace");
}

// --- binary format -----------------------------------------------------

TEST(BinaryTrace, RoundTripsThroughTextConverters)
{
    auto original = syntheticAccesses(700, 9);
    std::ostringstream text1;
    TraceWriter tw(text1);
    for (const auto &a : original)
        tw.append(a);

    // text -> binary -> text is bit-identical (canonical text in,
    // canonical text out), and the binary parses to the same accesses.
    std::istringstream text_in(text1.str());
    std::ostringstream bin;
    EXPECT_EQ(textTraceToBinary(text_in, bin), 700u);
    std::istringstream bin_in(bin.str());
    std::ostringstream text2;
    EXPECT_EQ(binaryTraceToText(bin_in, text2), 700u);
    EXPECT_EQ(text1.str(), text2.str());
}

TEST(BinaryTrace, WriterProducesFixedSizeRecords)
{
    std::ostringstream out;
    BinaryTraceWriter writer(out);
    auto accesses = syntheticAccesses(100, 3);
    for (const auto &a : accesses)
        writer.append(a);
    EXPECT_EQ(writer.count(), 100u);
    EXPECT_EQ(out.str().size(),
              sizeof kTraceMagic + 100 * kTraceRecordBytes);
    EXPECT_EQ(out.str().compare(0, 8, "ARCCTRC1"), 0);
}

TEST(BinaryTrace, ExtremeFieldValuesSurvive)
{
    CoreWorkload::Access a;
    a.addr = ~0ULL;
    a.instrGap = (1ULL << 63) - 1;
    a.isWrite = true;
    std::ostringstream bin;
    BinaryTraceWriter writer(bin);
    writer.append(a);
    std::istringstream in(bin.str());
    std::ostringstream text;
    EXPECT_EQ(binaryTraceToText(in, text), 1u);
    std::istringstream text_in(text.str());
    auto parsed = parseTrace(text_in);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].addr, a.addr);
    EXPECT_EQ(parsed[0].instrGap, a.instrGap);
    EXPECT_TRUE(parsed[0].isWrite);
}

TEST(BinaryTraceDeathTest, OversizedGapIsFatal)
{
    CoreWorkload::Access a;
    a.instrGap = 1ULL << 63; // collides with the write flag.
    std::ostringstream bin;
    BinaryTraceWriter writer(bin);
    EXPECT_EXIT(writer.append(a), ::testing::ExitedWithCode(1),
                "does not fit");
}

TEST(BinaryTraceDeathTest, BadMagicAndTruncationAreFatal)
{
    std::istringstream not_binary("1000 R 5\n");
    std::ostringstream text;
    EXPECT_EXIT(binaryTraceToText(not_binary, text),
                ::testing::ExitedWithCode(1), "magic");

    std::ostringstream bin;
    BinaryTraceWriter writer(bin);
    writer.append({});
    std::istringstream truncated(bin.str().substr(
        0, sizeof kTraceMagic + kTraceRecordBytes / 2));
    EXPECT_EXIT(binaryTraceToText(truncated, text),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(BinaryTrace, FileConvertersAndDetection)
{
    auto original = syntheticAccesses(256, 11);
    TempFile text(tempPath("convert.txt"));
    TempFile bin(tempPath("convert.bin"));
    TempFile back(tempPath("convert.back.txt"));
    {
        std::ofstream out(text.path);
        TraceWriter writer(out);
        for (const auto &a : original)
            writer.append(a);
    }
    EXPECT_FALSE(isBinaryTraceFile(text.path));
    EXPECT_EQ(textTraceFileToBinary(text.path, bin.path), 256u);
    EXPECT_TRUE(isBinaryTraceFile(bin.path));
    EXPECT_EQ(binaryTraceFileToText(bin.path, back.path), 256u);
    expectSameAccesses(loadTrace(back.path), original);
}

// --- TraceReplay / TraceStream -----------------------------------------

TEST(TraceReplay, LoopsAtTheEnd)
{
    std::vector<CoreWorkload::Access> v(3);
    v[0].addr = 0;
    v[1].addr = 64;
    v[2].addr = 128;
    TraceReplay replay(v);
    for (int lap = 0; lap < 3; ++lap)
        for (std::uint64_t a : {0ULL, 64ULL, 128ULL})
            EXPECT_EQ(replay.next().addr, a);
    EXPECT_EQ(replay.laps(), 3u);
}

TEST(TraceStream, MatchesTraceReplayAtEveryChunkSize)
{
    // The streaming reader is access-for-access and lap-for-lap
    // identical to the in-memory replay, including at chunk sizes
    // that straddle the wrap point mid-buffer.
    auto original = syntheticAccesses(97, 13);
    TempFile bin(tempPath("stream.bin"));
    {
        std::ofstream out(bin.path, std::ios::binary);
        BinaryTraceWriter writer(out);
        for (const auto &a : original)
            writer.append(a);
    }
    for (std::size_t chunk : {std::size_t{1}, std::size_t{8},
                              std::size_t{97}, std::size_t{1000}}) {
        SCOPED_TRACE("chunk=" + std::to_string(chunk));
        TraceReplay replay(original);
        TraceStream stream(bin.path, chunk);
        EXPECT_EQ(stream.records(), original.size());
        for (int i = 0; i < 300; ++i) {
            CoreWorkload::Access a = replay.next();
            CoreWorkload::Access b = stream.next();
            EXPECT_EQ(a.addr, b.addr) << i;
            EXPECT_EQ(a.isWrite, b.isWrite) << i;
            EXPECT_EQ(a.instrGap, b.instrGap) << i;
            EXPECT_EQ(replay.laps(), stream.laps()) << i;
        }
        EXPECT_EQ(stream.laps(), 3u);
    }
}

TEST(TraceStreamDeathTest, BadInputsAreFatal)
{
    EXPECT_EXIT(TraceStream("/nonexistent/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");

    TempFile text(tempPath("text_as_bin.txt"));
    {
        std::ofstream out(text.path);
        out << "1000 R 5\n";
    }
    EXPECT_EXIT(TraceStream(text.path), ::testing::ExitedWithCode(1),
                "magic");

    TempFile empty(tempPath("empty.bin"));
    {
        std::ofstream out(empty.path, std::ios::binary);
        BinaryTraceWriter writer(out); // magic, zero records.
    }
    EXPECT_EXIT(TraceStream(empty.path), ::testing::ExitedWithCode(1),
                "no accesses");

    TempFile truncated(tempPath("truncated.bin"));
    {
        std::ofstream out(truncated.path, std::ios::binary);
        BinaryTraceWriter writer(out);
        writer.append({});
        out.write("x", 1); // half a record's worth of trailing junk.
    }
    EXPECT_EXIT(TraceStream(truncated.path),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(TraceStreamDeathTest, TornFinalRecordIsFatalAtEveryOffset)
{
    // A crash mid-append can cut the final record at any byte; every
    // cut must be diagnosed as truncation up front, never replayed as
    // a partial record.
    for (std::size_t cut = 1; cut < kTraceRecordBytes; ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        TempFile bin(tempPath("torn." + std::to_string(cut)));
        {
            std::ofstream out(bin.path, std::ios::binary);
            BinaryTraceWriter writer(out);
            for (const auto &a : syntheticAccesses(4, 23))
                writer.append(a);
        }
        std::filesystem::resize_file(
            bin.path,
            sizeof kTraceMagic + 3 * kTraceRecordBytes + cut);
        EXPECT_EXIT(TraceStream(bin.path),
                    ::testing::ExitedWithCode(1), "torn final write");
    }
}

TEST(BinaryTraceDeathTest, TornFinalRecordIsFatalAtEveryOffset)
{
    // Same sweep through the streaming converter.
    std::ostringstream bin;
    BinaryTraceWriter writer(bin);
    for (const auto &a : syntheticAccesses(2, 29))
        writer.append(a);
    const std::string whole = bin.str();
    for (std::size_t cut = 1; cut < kTraceRecordBytes; ++cut) {
        SCOPED_TRACE("cut=" + std::to_string(cut));
        std::istringstream torn(whole.substr(
            0, sizeof kTraceMagic + kTraceRecordBytes + cut));
        std::ostringstream text;
        EXPECT_EXIT(binaryTraceToText(torn, text),
                    ::testing::ExitedWithCode(1), "torn final write");
    }
}

TEST(TraceStreamDeathTest, FileShrinkingMidReplayIsFatal)
{
    TempFile bin(tempPath("shrink.bin"));
    {
        std::ofstream out(bin.path, std::ios::binary);
        BinaryTraceWriter writer(out);
        for (const auto &a : syntheticAccesses(64, 17))
            writer.append(a);
    }
    EXPECT_EXIT(
        {
            TraceStream stream(bin.path, 8);
            std::filesystem::resize_file(
                bin.path, sizeof kTraceMagic + kTraceRecordBytes);
            for (int i = 0; i < 64; ++i)
                stream.next();
        },
        ::testing::ExitedWithCode(1), "shrank");
}

// --- StreamSpec factories ----------------------------------------------

TEST(TraceStreamSpec, BinaryAndTextTracesProduceTheSameStream)
{
    auto original = syntheticAccesses(128, 19);
    TempFile text(tempPath("spec.txt"));
    TempFile bin(tempPath("spec.bin"));
    {
        std::ofstream out(text.path);
        TraceWriter writer(out);
        for (const auto &a : original)
            writer.append(a);
    }
    textTraceFileToBinary(text.path, bin.path);

    StreamSpec from_text = traceStreamSpec(text.path, 1.5);
    StreamSpec from_bin = traceStreamSpec(bin.path, 1.5);
    ASSERT_TRUE(from_text.next && from_bin.next);
    ASSERT_TRUE(from_text.laps && from_bin.laps);
    for (int i = 0; i < 300; ++i) {
        CoreWorkload::Access a = from_text.next();
        CoreWorkload::Access b = from_bin.next();
        EXPECT_EQ(a.addr, b.addr) << i;
        EXPECT_EQ(a.isWrite, b.isWrite) << i;
        EXPECT_EQ(a.instrGap, b.instrGap) << i;
    }
    EXPECT_EQ(from_text.laps(), from_bin.laps());
    EXPECT_EQ(from_text.laps(), 2u);
    // The spec names are the file basenames.
    EXPECT_EQ(from_text.name.find("arcc_test_trace.spec.txt"), 0u);
}

TEST(TraceStreamSpecDeathTest, EmptyTextTraceIsFatal)
{
    TempFile text(tempPath("comments_only.txt"));
    {
        std::ofstream out(text.path);
        out << "# a trace with no accesses\n\n";
    }
    EXPECT_EXIT(traceStreamSpec(text.path, 1.0),
                ::testing::ExitedWithCode(1), "no accesses");
}

// --- end-to-end through the simulator ----------------------------------

TEST(TraceReplay, DrivesTheSystemSimulator)
{
    // Capture four synthetic streams, replay them, and check the
    // simulator produces the same result as the live generators.
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 50'000;
    cfg.seed = 77;

    SimResult live = simulateMix(table73Mixes()[3], cfg, {});

    AddressMap map(cfg.mem, cfg.mapPolicy);
    std::vector<StreamSpec> streams;
    for (int i = 0; i < 4; ++i) {
        const BenchmarkProfile &prof =
            benchmarkProfile(table73Mixes()[3].benchmarks[i]);
        CoreWorkload wl(prof, map.capacity(), i,
                        mixCoreSeed(cfg.seed, i));
        std::vector<CoreWorkload::Access> recorded;
        std::uint64_t instrs = 0;
        while (instrs < cfg.instrsPerCore + 1000) {
            recorded.push_back(wl.next());
            instrs += recorded.back().instrGap;
        }
        auto replay = std::make_shared<TraceReplay>(recorded);
        StreamSpec spec;
        spec.name = prof.name + "-trace";
        spec.baseIpc = prof.baseIpc;
        spec.next = [replay]() { return replay->next(); };
        spec.laps = [replay]() { return replay->laps(); };
        streams.push_back(std::move(spec));
    }
    SimResult replayed = simulateStreams(std::move(streams), cfg, {});
    EXPECT_NEAR(replayed.ipcSum, live.ipcSum, 1e-9);
    EXPECT_NEAR(replayed.avgPowerMw, live.avgPowerMw, 1e-9);
    // The traces were captured past the budget, so no core wrapped;
    // the lap accounting still surfaces per core.
    for (const CoreResult &core : replayed.cores)
        EXPECT_EQ(core.traceLaps, 0u);
    for (const CoreResult &core : live.cores)
        EXPECT_EQ(core.traceLaps, 0u); // synthetic: no lap counter.
}

TEST(TraceStream, ShortTraceLapsSurfaceInTheSimResult)
{
    // A trace much shorter than the instruction budget wraps many
    // times; CoreResult::traceLaps reports it (the signal that the
    // run is repetition-dominated).
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 50'000;
    cfg.seed = 23;
    AddressMap map(cfg.mem, cfg.mapPolicy);

    TempFile bin(tempPath("short.bin"));
    std::uint64_t trace_instrs = 0;
    {
        CoreWorkload wl(benchmarkProfile("libquantum"),
                        map.capacity(), 0, cfg.seed);
        std::ofstream out(bin.path, std::ios::binary);
        BinaryTraceWriter writer(out);
        for (int i = 0; i < 200; ++i) {
            CoreWorkload::Access a = wl.next();
            trace_instrs += a.instrGap;
            writer.append(a);
        }
    }

    std::vector<StreamSpec> streams;
    streams.push_back(traceStreamSpec(
        bin.path, benchmarkProfile("libquantum").baseIpc));
    for (int i = 1; i < cfg.cores; ++i)
        streams.push_back(syntheticStreamSpec(
            "sjeng", map.capacity(), i, cfg.seed + i));
    SimResult r = simulateStreams(std::move(streams), cfg, {});

    EXPECT_GE(r.cores[0].traceLaps,
              cfg.instrsPerCore / trace_instrs);
    EXPECT_EQ(r.cores[1].traceLaps, 0u);
    EXPECT_GE(r.cores[0].instrs, cfg.instrsPerCore);
}

} // namespace
} // namespace arcc
