/**
 * @file
 * Reliability-model tests (Chapter 6 / Figure 6.1 machinery).
 */

#include <gtest/gtest.h>

#include "reliability/sdc_model.hh"

namespace arcc
{
namespace
{

TEST(SdcModel, OverlapProbabilitiesAreProbabilities)
{
    SdcModel m(SdcModelConfig::arccMachine());
    for (FaultType a : allFaultTypes()) {
        for (FaultType b : allFaultTypes()) {
            double p = m.pairOverlap(a, b);
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
            EXPECT_DOUBLE_EQ(p, m.pairOverlap(b, a)) << "symmetry";
        }
    }
}

TEST(SdcModel, LaneOverlapsEverything)
{
    SdcModel m(SdcModelConfig::arccMachine());
    for (FaultType t : allFaultTypes())
        EXPECT_DOUBLE_EQ(m.pairOverlap(FaultType::Lane, t), 1.0);
}

TEST(SdcModel, NarrowerFootprintsOverlapLess)
{
    SdcModel m(SdcModelConfig::arccMachine());
    double dev_dev = m.pairOverlap(FaultType::Device, FaultType::Device);
    double bank_bank = m.pairOverlap(FaultType::Bank, FaultType::Bank);
    double col_col =
        m.pairOverlap(FaultType::Column, FaultType::Column);
    double bit_bit = m.pairOverlap(FaultType::Bit, FaultType::Bit);
    EXPECT_GT(dev_dev, bank_bank);
    EXPECT_GT(bank_bank, col_col);
    EXPECT_GT(col_col, bit_bit);
}

TEST(SdcModel, TripleOverlapNeverExceedsPairOverlap)
{
    SdcModel m(SdcModelConfig::sccdcdMachine());
    for (FaultType a : allFaultTypes())
        for (FaultType b : allFaultTypes())
            EXPECT_LE(m.tripleOverlap(a, b, FaultType::Device),
                      m.pairOverlap(a, b) + 1e-15);
}

TEST(SdcModel, ArccSdcIsTinyButNonZero)
{
    SdcModel m(SdcModelConfig::arccMachine());
    double sdc = m.arccSdcPer1000MachineYears(7.0);
    EXPECT_GT(sdc, 0.0);
    // Chapter 6: the degradation is "insignificant"; the absolute SDC
    // count stays far below one event per 1000 machine-years.
    EXPECT_LT(sdc, 1.0);
}

TEST(SdcModel, SccdcdSdcIsOrdersOfMagnitudeBelowArccDed)
{
    // Simultaneous DED requires three overlapping faults; the reduced
    // DED of ARCC only two within a scrub window.  The baseline's SDC
    // must be far smaller -- and both far below significance, which is
    // the actual claim of Figure 6.1.
    SdcModel arcc(SdcModelConfig::arccMachine());
    SdcModel base(SdcModelConfig::sccdcdMachine());
    double a = arcc.arccSdcPer1000MachineYears(7.0);
    double s = base.sccdcdSdcPer1000MachineYears(7.0);
    EXPECT_LT(s, a);
    EXPECT_LT(s, 1e-3);
}

TEST(SdcModel, SdcScalesLinearlyWithScrubPeriod)
{
    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    SdcModel m4(cfg);
    cfg.scrubHours = 8.0;
    SdcModel m8(cfg);
    EXPECT_NEAR(m8.arccSdcEvents(7.0), 2.0 * m4.arccSdcEvents(7.0),
                1e-12);
}

TEST(SdcModel, SdcScalesQuadraticallyWithFaultRate)
{
    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    SdcModel m1(cfg);
    cfg.rates = cfg.rates.scaled(4.0);
    SdcModel m4(cfg);
    EXPECT_NEAR(m4.arccSdcEvents(7.0) / m1.arccSdcEvents(7.0), 16.0,
                1e-6);
}

TEST(SdcModel, SccdcdSdcScalesCubicallyWithFaultRate)
{
    SdcModelConfig cfg = SdcModelConfig::sccdcdMachine();
    SdcModel m1(cfg);
    cfg.rates = cfg.rates.scaled(2.0);
    SdcModel m2(cfg);
    EXPECT_NEAR(m2.sccdcdSdcEvents(5.0) / m1.sccdcdSdcEvents(5.0), 8.0,
                1e-6);
}

TEST(SdcModel, DueModelIsSchemeIndependentClaim)
{
    // Section 6.1: ARCC does not degrade the DUE rate.  In the model
    // the DUE structure (overlapping pairs over the lifetime) differs
    // between groupings only through the codeword-group geometry; with
    // the same geometry it is identical by construction.
    SdcModel a(SdcModelConfig::arccMachine());
    double due = a.dueEvents(7.0);
    EXPECT_GT(due, 0.0);
    // DUE events dwarf SDC events (no scrub-window coincidence
    // needed).
    EXPECT_GT(due, 100.0 * a.arccSdcEvents(7.0));
}

TEST(SdcModel, MonteCarloValidatesTheAnalyticModel)
{
    // Boost rates so overlaps actually occur, then compare the MC
    // count with the analytic model evaluated at the boosted rates.
    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    const double boost = 2000.0;
    SdcModel model(cfg);
    double mc = model.mcArccSdcEvents(7.0, boost, 400, 99);

    SdcModelConfig boosted = cfg;
    boosted.rates = cfg.rates.scaled(boost);
    SdcModel bmodel(boosted);
    double analytic = bmodel.arccSdcEvents(7.0);

    EXPECT_GT(mc, 0.0);
    EXPECT_NEAR(mc, analytic, analytic * 0.4);
}

TEST(SdcModel, RejectsInconsistentGeometry)
{
    SdcModelConfig cfg = SdcModelConfig::arccMachine();
    cfg.groups = 3;
    EXPECT_EXIT(SdcModel m(cfg), ::testing::ExitedWithCode(1),
                "groups");
}

TEST(MeasureMiscorrection, DoubleErrorAliasRateNearNOverQ)
{
    // RS(18,16) with maxCorrect=1 under 2 random errors miscorrects at
    // roughly n/q ~ 7% (this feeds the aliasFactor refinement).
    double rate = measureMiscorrectionRate(18, 16, 1, 2, 4000, 7);
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.15);
}

TEST(MeasureMiscorrection, SccdcdNeverAliasesOnDoubleErrors)
{
    double rate = measureMiscorrectionRate(36, 32, 1, 2, 2000, 8);
    EXPECT_DOUBLE_EQ(rate, 0.0);
}

TEST(MeasureMiscorrection, WithinCapabilityNeverMiscorrects)
{
    EXPECT_DOUBLE_EQ(measureMiscorrectionRate(36, 32, 2, 2, 1000, 9),
                     0.0);
    EXPECT_DOUBLE_EQ(measureMiscorrectionRate(18, 16, 1, 1, 1000, 10),
                     0.0);
}

} // namespace
} // namespace arcc
