/**
 * @file
 * Heap-allocation audits for the steady-state decode paths.
 *
 * The PR contract is that the ECC hot loops -- syndrome screens,
 * encodes, decodes, the scrub-style batch sweep, the VECC batch --
 * perform *zero* heap allocations once their workspaces are warm.
 * This binary replaces the global operator new/delete with counting
 * wrappers and measures allocation deltas across the hot regions.
 *
 * Assertions are collected into plain flags inside the measured
 * regions (a failing gtest assertion allocates its message, which
 * would double-report), then asserted afterwards.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <span>
#include <unistd.h>
#include <vector>

#include "arcc/arcc_memory.hh"
#include "arcc/scrubber.hh"
#include "arcc/vecc.hh"
#include "common/rng.hh"
#include "cpu/trace.hh"
#include "ecc/gf256_simd.hh"
#include "ecc/reed_solomon.hh"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_allocBytes{0};

} // anonymous namespace

// Counting global allocator.  Aligned variants are left at their
// defaults (nothing in the measured paths uses over-aligned types);
// the replaced forms pair new/malloc with delete/free consistently.
void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace arcc
{
namespace
{

/** Allocation count across a callable, after one warm-up run. */
template <class F>
std::uint64_t
allocationsIn(F &&hot)
{
    hot(); // warm-up: builds tables, fills buffer capacities.
    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    hot();
    return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(AllocFree, RsEncodeSyndromeAndDecodeLoops)
{
    ReedSolomon rs(36, 32);
    RsWorkspace ws;
    Rng rng(1);

    std::vector<std::uint8_t> clean(36);
    for (int i = 0; i < 32; ++i)
        clean[i] = static_cast<std::uint8_t>(rng.below(256));
    rs.encode(clean);
    std::vector<std::uint8_t> word = clean;
    const std::vector<int> erasures = {7};

    bool ok = true;
    const std::uint64_t allocs = allocationsIn([&] {
        for (int t = 0; t < 200; ++t) {
            // Clean-word syndrome screen (the per-access fast path).
            ok = ok && rs.syndromesZero(clean);
            // Encode.
            word = clean;
            rs.encode(word);
            // Corrupted decode: 2 errors, full capability.
            word[5] ^= 0x7b;
            word[20] ^= 0x11;
            RsDecodeView res = rs.decode(word, ws);
            ok = ok && res.status == DecodeStatus::Corrected &&
                 word == clean;
            // Erasure + error decode.
            word[7] = 0xaa;
            word[20] ^= 0x31;
            res = rs.decode(word, ws, -1, erasures);
            ok = ok && res.status == DecodeStatus::Corrected &&
                 word == clean;
            // Beyond capability: Detected, rolled back.
            word[1] ^= 1;
            word[2] ^= 2;
            word[3] ^= 3;
            word[4] ^= 4;
            word[5] ^= 5;
            res = rs.decode(word, ws, 2);
            ok = ok && res.status == DecodeStatus::Detected;
            word = clean;
        }
    });

    EXPECT_TRUE(ok);
    EXPECT_EQ(allocs, 0u)
        << "the RS workspace paths must not touch the heap";
}

TEST(AllocFree, SoaBatchDecodeSteadyState)
{
    // The SoA staging buffers live inside RsWorkspace precisely so
    // the batched screen + decode never touches the heap: stage a
    // full block of lanes, corrupt a few, decode, repeat.
    ReedSolomon rs(36, 32);
    RsWorkspace ws;
    Rng rng(5);

    constexpr int kLanes = RsWorkspace::kSoaLanes;
    std::vector<std::uint8_t> words(
        static_cast<std::size_t>(kLanes) * 36);
    for (int l = 0; l < kLanes; ++l) {
        std::uint8_t *w = words.data() +
                          static_cast<std::size_t>(l) * 36;
        for (int i = 0; i < 32; ++i)
            w[i] = static_cast<std::uint8_t>(rng.below(256));
        rs.encode(std::span<std::uint8_t>(w, 36));
    }

    RsLaneResult results[kLanes];
    bool ok = true;
    const std::uint64_t allocs = allocationsIn([&] {
        for (int t = 0; t < 200; ++t) {
            gfsimd::soaScatter(words.data(), 36, 36, kLanes,
                               ws.soa.data(), kLanes);
            // Lanes 3 and 17 take correctable hits; the rest screen
            // clean through the vector syndrome pass.
            ws.soa[static_cast<std::size_t>(9) * kLanes + 3] ^= 0x5a;
            ws.soa[static_cast<std::size_t>(30) * kLanes + 17] ^= 0x01;
            ws.soa[static_cast<std::size_t>(2) * kLanes + 17] ^= 0xc3;
            rs.decodeSoa(ws.soa.data(), kLanes, kLanes, ws, -1, {},
                         results);
            for (int l = 0; l < kLanes; ++l) {
                const RsLaneResult &r = results[l];
                ok = ok &&
                     r.status == (l == 3 || l == 17
                                      ? DecodeStatus::Corrected
                                      : DecodeStatus::Clean) &&
                     r.symbolsCorrected == (l == 3 ? 1
                                            : l == 17 ? 2
                                                      : 0);
                const std::uint8_t *w =
                    words.data() + static_cast<std::size_t>(l) * 36;
                for (int s = 0; s < 36; ++s)
                    ok = ok &&
                         ws.soa[static_cast<std::size_t>(s) * kLanes +
                                l] == w[s];
            }
        }
    });

    EXPECT_TRUE(ok);
    EXPECT_EQ(allocs, 0u)
        << "the SoA batch decode must not touch the heap";
}

TEST(AllocFree, ScrubStyleBatchSweepSteadyState)
{
    // The scrubber's per-page pattern: batched group decode, raw
    // pattern checks, group re-encode -- through caller-owned
    // workspaces, page after page.
    ArccMemory mem(FunctionalConfig::arccSmall());
    ScrubScratch scratch;
    MemoryStats stats;
    const std::uint64_t pages = mem.pageTable().pages();

    // Fill with random content so the all-0 raw check genuinely
    // fails, as it does mid-scrub on live data.
    {
        Rng rng(3);
        const std::uint64_t group = mem.groupBytes(
            mem.pageTable().mode(0));
        std::vector<std::uint8_t> data(group);
        for (std::uint64_t base = 0; base < mem.capacity();
             base += group) {
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.range(1, 255));
            mem.writeGroup(base, data);
        }
    }

    bool ok = true;
    auto sweep = [&](std::uint64_t page) {
        const std::uint64_t base = page * kPageBytes;
        scratch.addrs.resize(kLinesPerPage);
        for (std::uint64_t i = 0; i < kLinesPerPage; ++i)
            scratch.addrs[i] = base + i * kLineBytes;
        mem.accessBatch(scratch.addrs, stats, scratch.mem,
                        scratch.lines);
        for (const ReadResult &r : scratch.lines)
            ok = ok && r.status == DecodeStatus::Clean;

        const std::uint64_t group =
            mem.groupBytes(mem.pageTable().mode(page));
        for (std::uint64_t off = 0; off < kPageBytes; off += group) {
            ok = ok && mem.rawCheck(base + off, 0x00,
                                    scratch.mem.line) == false;
            // Reassemble and re-encode the first group's data.
            scratch.data.clear();
            const std::uint64_t lines_per_group = group / kLineBytes;
            const std::uint64_t g = off / group;
            for (std::uint64_t l = 0; l < lines_per_group; ++l) {
                const ReadResult &r =
                    scratch.lines[g * lines_per_group + l];
                scratch.data.insert(scratch.data.end(),
                                    r.data.begin(), r.data.end());
            }
            mem.writeGroup(base + off, scratch.data, stats,
                           scratch.mem);
        }
    };

    const std::uint64_t allocs = allocationsIn([&] {
        for (std::uint64_t p = 0; p < pages; ++p)
            sweep(p);
    });

    EXPECT_TRUE(ok);
    EXPECT_EQ(allocs, 0u)
        << "the batched sweep must be allocation-free in steady state";
}

TEST(AllocFree, VeccBatchSteadyState)
{
    VeccMemory mem(VeccGeometry::vecc18(), 32, 1.0, 3);
    Rng rng(2);
    std::vector<std::uint8_t> data(mem.lineBytes());
    for (std::uint64_t l = 0; l < 32; ++l) {
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(l, data);
    }
    // A dead device forces every line through the tier-2 pass, so
    // both phases of the batch are exercised.
    mem.killDevice(4);

    std::vector<std::uint64_t> lines;
    for (std::uint64_t l = 0; l < 32; ++l)
        lines.push_back(l);
    std::vector<VeccReadResult> results;

    bool ok = true;
    const std::uint64_t allocs = allocationsIn([&] {
        mem.readBatch(lines, results);
        for (const VeccReadResult &r : results)
            ok = ok && r.status == DecodeStatus::Corrected &&
                 r.tier2Fetched;
    });

    EXPECT_TRUE(ok);
    EXPECT_EQ(allocs, 0u)
        << "the VECC batch must be allocation-free in steady state";
}

TEST(AllocFree, TraceStreamReplayIsChunkBoundedNotFileBound)
{
    // The streaming-trace contract: replaying a large binary trace
    // through TraceStream keeps resident memory O(chunk) -- the
    // reader must never slurp the file.  Enforced two ways: the total
    // bytes the stream allocates (chunk buffer + path) stay far below
    // the file size, and the steady-state replay loop performs zero
    // allocations (refills reuse the chunk buffer).
    const std::uint64_t kRecords = 100'000;
    const std::size_t kChunk = 512; // 8 KiB buffer.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("arcc_test_alloc_trace." + std::to_string(::getpid()) +
          ".bin"))
            .string();
    {
        std::ofstream out(path, std::ios::binary);
        BinaryTraceWriter writer(out);
        Rng rng(7);
        CoreWorkload::Access a;
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            a.addr = rng.below(1ULL << 34);
            a.isWrite = rng.chance(0.3);
            a.instrGap = rng.below(500);
            writer.append(a);
        }
    }
    const std::uint64_t file_bytes = std::filesystem::file_size(path);
    ASSERT_EQ(file_bytes, sizeof kTraceMagic +
              kRecords * kTraceRecordBytes); // 1.6 MB

    std::uint64_t checksum = 0;
    std::uint64_t laps = 0;
    std::uint64_t stream_bytes = 0;
    std::uint64_t steady_allocs = 0;
    {
        const std::uint64_t bytes_before =
            g_allocBytes.load(std::memory_order_relaxed);
        TraceStream stream(path, kChunk);
        for (std::uint64_t i = 0; i < kRecords; ++i) // cold lap.
            checksum += stream.next().addr;
        stream_bytes = g_allocBytes.load(std::memory_order_relaxed) -
                       bytes_before;

        const std::uint64_t allocs_before =
            g_allocs.load(std::memory_order_relaxed);
        for (std::uint64_t i = 0; i < kRecords; ++i) // warm lap.
            checksum += stream.next().addr;
        steady_allocs = g_allocs.load(std::memory_order_relaxed) -
                        allocs_before;
        laps = stream.laps();
    }

    EXPECT_NE(checksum, 0u);
    EXPECT_EQ(laps, 2u);
    EXPECT_EQ(steady_allocs, 0u)
        << "a warm TraceStream lap must not touch the heap";
    // O(chunk): construction + a full cold lap allocate about one
    // chunk buffer (8 KiB), not the 1.6 MB file.  The bound leaves
    // room for the path strings but is 25x below O(file).
    EXPECT_LT(stream_bytes, 64 * 1024u)
        << "TraceStream must hold one chunk, not the file";
    std::remove(path.c_str());
}

} // namespace
} // namespace arcc
