/**
 * @file
 * SECDED (72,64) tests: exhaustive single-bit correction, double-bit
 * detection, and round trips.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/secded.hh"

namespace arcc
{
namespace
{

TEST(Secded, CleanRoundTrip)
{
    Rng rng(1);
    for (int t = 0; t < 1000; ++t) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        std::uint64_t d = data;
        std::uint8_t c = check;
        auto res = Secded::decode(d, c);
        EXPECT_EQ(res.status, DecodeStatus::Clean);
        EXPECT_EQ(d, data);
        EXPECT_EQ(c, check);
    }
}

TEST(Secded, CorrectsEverySingleDataBitExhaustively)
{
    Rng rng(2);
    for (int rep = 0; rep < 8; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (int bit = 0; bit < 64; ++bit) {
            std::uint64_t d = data ^ (1ULL << bit);
            std::uint8_t c = check;
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Corrected) << bit;
            EXPECT_EQ(d, data) << bit;
            EXPECT_EQ(c, check) << bit;
        }
    }
}

TEST(Secded, CorrectsEverySingleCheckBitExhaustively)
{
    Rng rng(3);
    for (int rep = 0; rep < 8; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (int bit = 0; bit < 8; ++bit) {
            std::uint64_t d = data;
            std::uint8_t c = check ^ static_cast<std::uint8_t>(1 << bit);
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Corrected) << bit;
            EXPECT_EQ(d, data) << bit;
            EXPECT_EQ(c, check) << bit;
        }
    }
}

TEST(Secded, DetectsEveryDoubleDataBitError)
{
    Rng rng(4);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (int i = 0; i < 64; ++i) {
        for (int j = i + 1; j < 64; ++j) {
            std::uint64_t d = data ^ (1ULL << i) ^ (1ULL << j);
            std::uint8_t c = check;
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, DetectsDataPlusCheckDoubleErrors)
{
    Rng rng(5);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (int i = 0; i < 64; ++i) {
        for (int j = 0; j < 8; ++j) {
            std::uint64_t d = data ^ (1ULL << i);
            std::uint8_t c = check ^ static_cast<std::uint8_t>(1 << j);
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, CheckBitsDifferAcrossData)
{
    // Not a full distance proof, just a sanity screen: different data
    // words rarely share check bits, and single-bit-different words
    // never decode into each other.
    EXPECT_NE(Secded::encode(0x0123456789abcdefULL),
              Secded::encode(0xfedcba9876543210ULL));
    EXPECT_NE(Secded::encode(1), Secded::encode(2));
}

} // namespace
} // namespace arcc
