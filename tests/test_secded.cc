/**
 * @file
 * SECDED (72,64) tests: exhaustive single-bit correction, double-bit
 * detection, round trips, the check-bit / overall-parity correction
 * paths, and fast-vs-reference oracle agreement (exhaustive at weight
 * <= 2, seed-logged fuzz at weight 3 where miscorrection aliasing
 * begins).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/rng.hh"
#include "ecc/secded.hh"

namespace arcc
{
namespace
{

/** Flip wire bit b (0..63 data, 64..71 check) of a (data, check). */
void
flipWire(std::uint64_t &data, std::uint8_t &check, int b)
{
    if (b < 64)
        data ^= 1ULL << b;
    else
        check ^= static_cast<std::uint8_t>(1 << (b - 64));
}

TEST(Secded, CleanRoundTrip)
{
    Rng rng(1);
    for (int t = 0; t < 1000; ++t) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        std::uint64_t d = data;
        std::uint8_t c = check;
        auto res = Secded::decode(d, c);
        EXPECT_EQ(res.status, DecodeStatus::Clean);
        EXPECT_EQ(d, data);
        EXPECT_EQ(c, check);
    }
}

TEST(Secded, CorrectsEverySingleDataBitExhaustively)
{
    Rng rng(2);
    for (int rep = 0; rep < 8; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (int bit = 0; bit < 64; ++bit) {
            std::uint64_t d = data ^ (1ULL << bit);
            std::uint8_t c = check;
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Corrected) << bit;
            EXPECT_EQ(d, data) << bit;
            EXPECT_EQ(c, check) << bit;
        }
    }
}

TEST(Secded, CorrectsEverySingleCheckBitExhaustively)
{
    Rng rng(3);
    for (int rep = 0; rep < 8; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        for (int bit = 0; bit < 8; ++bit) {
            std::uint64_t d = data;
            std::uint8_t c = check ^ static_cast<std::uint8_t>(1 << bit);
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Corrected) << bit;
            EXPECT_EQ(d, data) << bit;
            EXPECT_EQ(c, check) << bit;
        }
    }
}

TEST(Secded, DetectsEveryDoubleDataBitError)
{
    Rng rng(4);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (int i = 0; i < 64; ++i) {
        for (int j = i + 1; j < 64; ++j) {
            std::uint64_t d = data ^ (1ULL << i) ^ (1ULL << j);
            std::uint8_t c = check;
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, DetectsDataPlusCheckDoubleErrors)
{
    Rng rng(5);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (int i = 0; i < 64; ++i) {
        for (int j = 0; j < 8; ++j) {
            std::uint64_t d = data ^ (1ULL << i);
            std::uint8_t c = check ^ static_cast<std::uint8_t>(1 << j);
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, SingleBitSweepCoversEveryHammingPosition)
{
    // Exhaustive over all 72 wire bits: every flip corrects, the wire
    // round-trips, and the reported bitCorrected values cover exactly
    // the 1-based Hamming positions {1..72} -- data bits at
    // non-power-of-two positions, the 7 check bits at the powers of
    // two, and 72 for the overall parity bit.
    Rng rng(20);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);

    std::set<int> seen;
    for (int b = 0; b < 72; ++b) {
        std::uint64_t d = data;
        std::uint8_t c = check;
        flipWire(d, c, b);
        auto res = Secded::decode(d, c);
        ASSERT_EQ(res.status, DecodeStatus::Corrected) << b;
        EXPECT_EQ(d, data) << b;
        EXPECT_EQ(c, check) << b;
        seen.insert(res.bitCorrected);
    }
    EXPECT_EQ(seen.size(), 72u);
    EXPECT_EQ(*seen.begin(), 1);
    EXPECT_EQ(*seen.rbegin(), 72);
}

TEST(Secded, OverallParityBitCorrectionReportsPosition72)
{
    Rng rng(21);
    for (int rep = 0; rep < 32; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        std::uint64_t d = data;
        std::uint8_t c = check ^ 0x80; // Wire bit 71: overall parity.
        auto res = Secded::decode(d, c);
        ASSERT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(res.bitCorrected, 72);
        EXPECT_EQ(d, data);
        EXPECT_EQ(c, check);
    }
}

TEST(Secded, DetectsEveryDoubleWireBitError)
{
    // All C(72, 2) pairs, including check+check and check+parity
    // combinations the data-only sweeps miss.
    Rng rng(22);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);
    for (int i = 0; i < 72; ++i) {
        for (int j = i + 1; j < 72; ++j) {
            std::uint64_t d = data;
            std::uint8_t c = check;
            flipWire(d, c, i);
            flipWire(d, c, j);
            auto res = Secded::decode(d, c);
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, ReferenceDecodeAgreesExhaustivelyUpToWeightTwo)
{
    Rng rng(23);
    std::uint64_t data = rng.next();
    std::uint8_t check = Secded::encode(data);

    // Weight 0.
    {
        std::uint64_t d = data;
        std::uint8_t c = check;
        auto ref = Secded::referenceDecode(d, c);
        EXPECT_EQ(ref.status, DecodeStatus::Clean);
    }
    // Weight 1: both decoders correct to the same codeword (position
    // numbering differs by design: fast reports Hamming positions,
    // the reference wire bits).
    for (int b = 0; b < 72; ++b) {
        std::uint64_t df = data, dr = data;
        std::uint8_t cf = check, cr = check;
        flipWire(df, cf, b);
        flipWire(dr, cr, b);
        auto fast = Secded::decode(df, cf);
        auto ref = Secded::referenceDecode(dr, cr);
        ASSERT_EQ(fast.status, ref.status) << b;
        EXPECT_EQ(ref.bitCorrected, b);
        EXPECT_EQ(df, dr) << b;
        EXPECT_EQ(cf, cr) << b;
    }
    // Weight 2: both must refuse to touch the word.
    for (int i = 0; i < 72; ++i) {
        for (int j = i + 1; j < 72; ++j) {
            std::uint64_t df = data, dr = data;
            std::uint8_t cf = check, cr = check;
            flipWire(df, cf, i);
            flipWire(df, cf, j);
            flipWire(dr, cr, i);
            flipWire(dr, cr, j);
            auto fast = Secded::decode(df, cf);
            auto ref = Secded::referenceDecode(dr, cr);
            EXPECT_EQ(fast.status, DecodeStatus::Detected)
                << i << "," << j;
            EXPECT_EQ(ref.status, DecodeStatus::Detected)
                << i << "," << j;
        }
    }
}

TEST(Secded, TripleBitFuzzMatchesReferenceOracle)
{
    // Weight 3 is where extended Hamming aliases: an odd-parity
    // syndrome that happens to point at a valid position silently
    // miscorrects to a neighbouring codeword.  Both decoders must
    // alias *identically* -- same status, same resulting word --
    // since the reference's nearest-codeword search finds the unique
    // distance-1 codeword whenever the fast path claims one exists.
    const std::uint64_t seed = 0x5ecd'ed03'2026ULL;
    std::printf("[ seed ] SecdedTripleBitFuzz seed=0x%llx\n",
                static_cast<unsigned long long>(seed));
    Rng rng(seed);
    int miscorrections = 0;
    for (int rep = 0; rep < 4000; ++rep) {
        std::uint64_t data = rng.next();
        std::uint8_t check = Secded::encode(data);
        int b1 = static_cast<int>(rng.below(72));
        int b2, b3;
        do {
            b2 = static_cast<int>(rng.below(72));
        } while (b2 == b1);
        do {
            b3 = static_cast<int>(rng.below(72));
        } while (b3 == b1 || b3 == b2);

        std::uint64_t df = data, dr = data;
        std::uint8_t cf = check, cr = check;
        for (int b : {b1, b2, b3}) {
            flipWire(df, cf, b);
            flipWire(dr, cr, b);
        }
        auto fast = Secded::decode(df, cf);
        auto ref = Secded::referenceDecode(dr, cr);
        ASSERT_EQ(fast.status, ref.status)
            << b1 << "," << b2 << "," << b3;
        EXPECT_EQ(df, dr) << b1 << "," << b2 << "," << b3;
        EXPECT_EQ(cf, cr) << b1 << "," << b2 << "," << b3;
        // An odd number of flips never leaves a consistent word, so
        // Clean is impossible; corrections are miscorrections.
        EXPECT_NE(fast.status, DecodeStatus::Clean);
        if (fast.status == DecodeStatus::Corrected) {
            ++miscorrections;
            EXPECT_NE(df, data); // Really a different codeword.
        }
    }
    // Weight-3 patterns mostly miscorrect in (72, 64): the syndrome
    // usually lands on a valid position.  Sanity-check the fuzz saw
    // both outcomes rather than degenerating.
    EXPECT_GT(miscorrections, 0);
    EXPECT_LT(miscorrections, 4000);
}

TEST(Secded, CheckBitsDifferAcrossData)
{
    // Not a full distance proof, just a sanity screen: different data
    // words rarely share check bits, and single-bit-different words
    // never decode into each other.
    EXPECT_NE(Secded::encode(0x0123456789abcdefULL),
              Secded::encode(0xfedcba9876543210ULL));
    EXPECT_NE(Secded::encode(1), Secded::encode(2));
}

} // namespace
} // namespace arcc
