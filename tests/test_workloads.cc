/**
 * @file
 * Workload-generator tests: Table 7.3 coverage and stream statistics.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/units.hh"
#include "cpu/workloads.hh"

namespace arcc
{
namespace
{

TEST(Workloads, AllTwelveMixesExistWithFourBenchmarksEach)
{
    const auto &mixes = table73Mixes();
    ASSERT_EQ(mixes.size(), 12u);
    for (const auto &mix : mixes) {
        EXPECT_EQ(mix.benchmarks.size(), 4u) << mix.name;
        for (const auto &b : mix.benchmarks) {
            // Must resolve without fatal().
            const BenchmarkProfile &p = benchmarkProfile(b);
            EXPECT_FALSE(p.name.empty());
        }
    }
}

TEST(Workloads, Fma3diAliasesToFma3d)
{
    EXPECT_EQ(benchmarkProfile("fma3di").name, "fma3d");
}

TEST(Workloads, ProfilesAreSane)
{
    for (const auto &p : allBenchmarkProfiles()) {
        EXPECT_GT(p.baseIpc, 0.0) << p.name;
        EXPECT_LE(p.baseIpc, 2.0) << p.name << " (2-wide core)";
        EXPECT_GT(p.apki, 0.0) << p.name;
        EXPECT_GE(p.spatial, 0.0) << p.name;
        EXPECT_LT(p.spatial, 1.0) << p.name;
        EXPECT_GE(p.writeFrac, 0.0) << p.name;
        EXPECT_LE(p.writeFrac, 1.0) << p.name;
        EXPECT_GT(p.footprintMiB, 0.0) << p.name;
    }
}

TEST(Workloads, StreamStaysInsideTheCoreRegion)
{
    const std::uint64_t mem = 256 * kMiB;
    for (int core = 0; core < 4; ++core) {
        CoreWorkload wl(benchmarkProfile("swim"), mem, core, 99);
        std::uint64_t lo = core * (mem / 4);
        std::uint64_t hi = (core + 1) * (mem / 4);
        for (int i = 0; i < 20000; ++i) {
            auto a = wl.next();
            EXPECT_GE(a.addr, lo);
            EXPECT_LT(a.addr, hi);
        }
    }
}

TEST(Workloads, SpatialParameterControlsAdjacentAccessRate)
{
    const std::uint64_t mem = 256 * kMiB;
    for (const char *name : {"libquantum", "mcf2006"}) {
        const BenchmarkProfile &p = benchmarkProfile(name);
        CoreWorkload wl(p, mem, 0, 7);
        std::uint64_t prev = 0;
        int adjacent = 0;
        const int n = 50000;
        for (int i = 0; i < n; ++i) {
            auto a = wl.next();
            if (i > 0 && a.addr == prev + kLineBytes)
                ++adjacent;
            prev = a.addr;
        }
        double rate = static_cast<double>(adjacent) / n;
        EXPECT_NEAR(rate, p.spatial, 0.03) << name;
    }
}

TEST(Workloads, WriteFractionMatchesProfile)
{
    const std::uint64_t mem = 256 * kMiB;
    const BenchmarkProfile &p = benchmarkProfile("lbm");
    CoreWorkload wl(p, mem, 0, 8);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += wl.next().isWrite;
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFrac, 0.02);
}

TEST(Workloads, InstructionGapMatchesApki)
{
    const std::uint64_t mem = 256 * kMiB;
    const BenchmarkProfile &p = benchmarkProfile("sphinx3");
    CoreWorkload wl(p, mem, 0, 9);
    double total = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(wl.next().instrGap);
    double apki = 1000.0 / (total / n);
    EXPECT_NEAR(apki, p.apki, p.apki * 0.1);
}

TEST(Workloads, StreamsAreDeterministicPerSeed)
{
    const std::uint64_t mem = 256 * kMiB;
    CoreWorkload a(benchmarkProfile("milc"), mem, 1, 123);
    CoreWorkload b(benchmarkProfile("milc"), mem, 1, 123);
    for (int i = 0; i < 1000; ++i) {
        auto x = a.next();
        auto y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.isWrite, y.isWrite);
        EXPECT_EQ(x.instrGap, y.instrGap);
    }
}

TEST(Workloads, DifferentSeedsDiverge)
{
    const std::uint64_t mem = 256 * kMiB;
    CoreWorkload a(benchmarkProfile("milc"), mem, 1, 123);
    CoreWorkload b(benchmarkProfile("milc"), mem, 1, 124);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().addr == b.next().addr;
    EXPECT_LT(same, 100);
}

} // namespace
} // namespace arcc
