/**
 * @file
 * Property fuzzing for the codeword-transposed (SoA) batch pipeline
 * (ctest label `property`).
 *
 * Two contracts, fuzzed with seed-logged cases in the style of
 * test_property_rs_oracle.cc:
 *
 *  - the AoS <-> SoA transposes (gfsimd::soaScatter / soaGather) are
 *    exact inverses for arbitrary shapes, lane counts and strides;
 *  - ReedSolomon::decodeSoa is bit-identical *per lane* to the
 *    retained RsReference oracle across error + erasure mixes from
 *    clean through far beyond capability, on whichever dispatch tier
 *    the build selects.  The CI matrix re-runs this binary with
 *    -DARCC_SIMD=OFF (and with ARCC_SIMD=off in the environment), so
 *    the same cases pin the scalar and the vector path against the
 *    same oracle.
 *
 * Every case logs its seed with SCOPED_TRACE, so a failure reproduces
 * from the message alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ecc/gf256_simd.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_reference.hh"
#include "ecc/simd.hh"

namespace arcc
{
namespace
{

constexpr std::uint64_t kBaseSeed = 0x50aba7c4u;

/** Per-iteration seed: pure function of the base seed and index. */
std::uint64_t
caseSeed(std::uint64_t iteration)
{
    return Rng::mix64(kBaseSeed ^ (iteration * 0x9e3779b97f4a7c15ULL));
}

struct RsShape
{
    int n, k;
};

const std::vector<RsShape> kShapes = {
    {18, 16}, // ARCC relaxed.
    {36, 32}, // ARCC upgraded / commercial SCCDCD.
    {72, 64}, // Chapter 5.1 level 2.
};

/** Distinct random positions, optionally excluding a sorted set. */
std::vector<int>
distinctPositions(Rng &rng, int n, int count,
                  const std::vector<int> &exclude = {})
{
    std::vector<int> pos;
    while (static_cast<int>(pos.size()) < count) {
        int p = static_cast<int>(rng.below(n));
        if (std::find(pos.begin(), pos.end(), p) != pos.end())
            continue;
        if (std::binary_search(exclude.begin(), exclude.end(), p))
            continue;
        pos.push_back(p);
    }
    return pos;
}

TEST(SoaBatchProperty, ScatterGatherRoundTripsBitExactly)
{
    // Arbitrary symbol counts, lane counts and strides (stride is the
    // caller's choice as long as it holds the lanes): scatter then
    // gather must reproduce the words byte for byte, and scatter must
    // not write outside the [0, lanes) columns of its rows.
    for (std::uint64_t it = 0; it < 2000; ++it) {
        const std::uint64_t seed = caseSeed(0x900000000ULL + it);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed);

        const int symbols = static_cast<int>(rng.range(1, 80));
        const int lanes = static_cast<int>(
            rng.range(1, RsWorkspace::kSoaLanes));
        const std::size_t word_stride =
            static_cast<std::size_t>(symbols) + rng.below(5);
        const std::size_t soa_stride =
            static_cast<std::size_t>(lanes) + rng.below(9);

        std::vector<std::uint8_t> words(
            static_cast<std::size_t>(lanes) * word_stride);
        for (auto &b : words)
            b = static_cast<std::uint8_t>(rng.below(256));

        std::vector<std::uint8_t> soa(
            static_cast<std::size_t>(symbols) * soa_stride, 0xee);
        gfsimd::soaScatter(words.data(), word_stride, symbols, lanes,
                           soa.data(), soa_stride);

        // Transposed identity plus padding-column integrity.
        for (int s = 0; s < symbols; ++s) {
            for (std::size_t l = 0; l < soa_stride; ++l) {
                const std::uint8_t got =
                    soa[static_cast<std::size_t>(s) * soa_stride + l];
                if (l < static_cast<std::size_t>(lanes))
                    ASSERT_EQ(got, words[l * word_stride + s])
                        << "s=" << s << " l=" << l;
                else
                    ASSERT_EQ(got, 0xee)
                        << "scatter wrote past lane " << lanes;
            }
        }

        std::vector<std::uint8_t> back(words.size(), 0);
        gfsimd::soaGather(soa.data(), soa_stride, symbols, lanes,
                          back.data(), word_stride);
        for (int l = 0; l < lanes; ++l)
            for (int s = 0; s < symbols; ++s)
                ASSERT_EQ(back[l * word_stride + s],
                          words[l * word_stride + s]);
    }
}

TEST(SoaBatchProperty, BatchedDecodeMatchesReferencePerLane)
{
    // decodeSoa against the RsReference oracle, lane for lane: random
    // lane counts (including partial blocks), shared erasure sets,
    // per-lane error weights sweeping clean -> beyond capability, all
    // maxCorrect modes the schemes use.  Padding lanes are filled
    // with garbage to prove the kernel ignores them.
    constexpr int kStride = RsWorkspace::kSoaLanes;
    for (const RsShape &shape : kShapes) {
        ReedSolomon fast(shape.n, shape.k);
        RsReference ref(shape.n, shape.k);
        RsWorkspace ws;
        const int rr = fast.r();

        for (std::uint64_t it = 0; it < 400; ++it) {
            const std::uint64_t seed =
                caseSeed((static_cast<std::uint64_t>(shape.n) << 32) +
                         it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            const int lanes = static_cast<int>(
                rng.range(1, RsWorkspace::kSoaLanes));

            // Shared erasure set (decodeSoa applies one erasure list
            // to every lane, as the ARCC group decode does for a dead
            // device cutting across all of a group's codewords).
            const int f = static_cast<int>(rng.below(rr / 2 + 2));
            std::vector<int> erasures =
                distinctPositions(rng, shape.n, f);
            std::sort(erasures.begin(), erasures.end());

            // -1 = full capability, plus the per-scheme caps.
            const int max_correct =
                static_cast<int>(rng.below(4)) - 1;

            // Build, corrupt and stage the lane words.
            std::vector<std::vector<std::uint8_t>> received(lanes);
            for (auto &b : ws.soa)
                b = static_cast<std::uint8_t>(rng.below(256));
            for (int l = 0; l < lanes; ++l) {
                std::vector<std::uint8_t> word(shape.n);
                for (int i = 0; i < shape.k; ++i)
                    word[i] =
                        static_cast<std::uint8_t>(rng.below(256));
                fast.encode(word);

                for (int p : erasures)
                    word[p] =
                        static_cast<std::uint8_t>(rng.below(256));
                const int e = static_cast<int>(rng.below(rr + 2 - f));
                for (int p :
                     distinctPositions(rng, shape.n, e, erasures))
                    word[p] ^=
                        static_cast<std::uint8_t>(rng.range(1, 255));

                received[l] = word;
                for (int s = 0; s < shape.n; ++s)
                    ws.soa[static_cast<std::size_t>(s) * kStride + l] =
                        word[s];
            }

            RsLaneResult results[RsWorkspace::kSoaLanes];
            fast.decodeSoa(ws.soa.data(), kStride, lanes, ws,
                           max_correct, erasures, results);

            for (int l = 0; l < lanes; ++l) {
                std::vector<std::uint8_t> word_ref = received[l];
                const DecodeResult r =
                    ref.decode(word_ref, max_correct, erasures);

                std::vector<std::uint8_t> lane(shape.n);
                for (int s = 0; s < shape.n; ++s)
                    lane[s] = ws.soa[static_cast<std::size_t>(s) *
                                         kStride +
                                     l];

                if (results[l].status != r.status ||
                    lane != word_ref ||
                    results[l].symbolsCorrected !=
                        r.symbolsCorrected) {
                    FAIL() << "soa/reference divergence: lane=" << l
                           << "/" << lanes << " f=" << f
                           << " maxCorrect=" << max_correct
                           << " tier="
                           << simd::tierName(simd::activeTier())
                           << " seed=" << seed;
                }
            }
        }
    }
}

TEST(SoaBatchProperty, BatchedDecodeMatchesSingleWordDecode)
{
    // The staging contract the ARCC/VECC call sites rely on: pushing
    // a word through decodeSoa in some lane produces exactly the
    // status / word / count decode() produces on its own workspace --
    // including Detected rollbacks, which must restore the received
    // lane bytes bit for bit.
    constexpr int kStride = RsWorkspace::kSoaLanes;
    for (const RsShape &shape : kShapes) {
        ReedSolomon rs(shape.n, shape.k);
        RsWorkspace ws_soa, ws_one;
        const int rr = rs.r();

        for (std::uint64_t it = 0; it < 600; ++it) {
            const std::uint64_t seed =
                caseSeed(0xb00000000ULL +
                         (static_cast<std::uint64_t>(shape.n) << 24) +
                         it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);
            const int e = static_cast<int>(rng.below(rr + 2));
            for (int p : distinctPositions(rng, shape.n, e))
                word[p] ^=
                    static_cast<std::uint8_t>(rng.range(1, 255));

            const int lanes = static_cast<int>(
                rng.range(1, RsWorkspace::kSoaLanes));
            const int lane = static_cast<int>(rng.below(lanes));
            for (auto &b : ws_soa.soa)
                b = static_cast<std::uint8_t>(rng.below(256));
            // The other lanes carry unrelated clean words.
            std::vector<std::uint8_t> other(shape.n, 0);
            rs.encode(other);
            for (int l = 0; l < lanes; ++l)
                for (int s = 0; s < shape.n; ++s)
                    ws_soa.soa[static_cast<std::size_t>(s) * kStride +
                               l] = (l == lane ? word[s] : other[s]);

            RsLaneResult results[RsWorkspace::kSoaLanes];
            rs.decodeSoa(ws_soa.soa.data(), kStride, lanes, ws_soa,
                         -1, {}, results);

            std::vector<std::uint8_t> word_one = word;
            const RsDecodeView v = rs.decode(word_one, ws_one);

            EXPECT_EQ(results[lane].status, v.status);
            EXPECT_EQ(results[lane].symbolsCorrected,
                      v.symbolsCorrected);
            for (int s = 0; s < shape.n; ++s)
                ASSERT_EQ(ws_soa.soa[static_cast<std::size_t>(s) *
                                         kStride +
                                     lane],
                          word_one[s])
                    << "lane bytes diverged at symbol " << s;
            for (int l = 0; l < lanes; ++l) {
                if (l == lane)
                    continue;
                EXPECT_EQ(results[l].status, DecodeStatus::Clean);
                for (int s = 0; s < shape.n; ++s)
                    ASSERT_EQ(ws_soa.soa[static_cast<std::size_t>(s) *
                                             kStride +
                                         l],
                              other[s])
                        << "clean lane " << l << " disturbed";
            }
        }
    }
}

} // namespace
} // namespace arcc
