/**
 * @file
 * Property / fuzz-style tests for the GF(2^8) arithmetic and the
 * Reed-Solomon codecs (ctest label `property`).
 *
 * Each randomised case derives its generator from a per-iteration
 * seed -- Rng::mix64(kBaseSeed ^ iteration) -- and logs that seed
 * with SCOPED_TRACE, so any failure names the exact seed that
 * reproduces it:
 *
 *     Rng rng(seed_from_the_failure_message);
 *
 * The properties themselves are the algebra the decoder's
 * correctness rests on: field axioms for GF256, and the
 * encode / corrupt(<= t) / decode round-trip for RS(n, k).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ecc/gf256.hh"
#include "ecc/reed_solomon.hh"

namespace arcc
{
namespace
{

constexpr std::uint64_t kBaseSeed = 0xa2cc2013u;

/** Per-iteration seed: pure function of the base seed and index. */
std::uint64_t
caseSeed(std::uint64_t iteration)
{
    return Rng::mix64(kBaseSeed ^ (iteration * 0x9e3779b97f4a7c15ULL));
}

// --- GF(2^8) field axioms ----------------------------------------------

TEST(Gf256Property, FieldAxiomsHoldOnRandomTriples)
{
    for (std::uint64_t it = 0; it < 64; ++it) {
        std::uint64_t seed = caseSeed(it);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed);
        std::uint8_t a = static_cast<std::uint8_t>(rng.below(256));
        std::uint8_t b = static_cast<std::uint8_t>(rng.below(256));
        std::uint8_t c = static_cast<std::uint8_t>(rng.below(256));

        // Commutativity and associativity.
        EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
        // Distributivity over the field addition (XOR).
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
        // Identities and the absorbing zero.
        EXPECT_EQ(GF256::mul(a, 1), a);
        EXPECT_EQ(GF256::mul(a, 0), 0);
        EXPECT_EQ(GF256::add(a, a), 0); // characteristic 2.
    }
}

TEST(Gf256Property, EveryNonZeroElementHasAWorkingInverse)
{
    // Small enough to be exhaustive instead of sampled.
    for (int a = 1; a < GF256::kOrder; ++a) {
        std::uint8_t x = static_cast<std::uint8_t>(a);
        EXPECT_EQ(GF256::mul(x, GF256::inv(x)), 1) << "a=" << a;
        EXPECT_EQ(GF256::div(x, x), 1) << "a=" << a;
    }
}

TEST(Gf256Property, DivIsMulByInverseAndRoundTrips)
{
    for (std::uint64_t it = 0; it < 64; ++it) {
        std::uint64_t seed = caseSeed(1000 + it);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed);
        std::uint8_t a = static_cast<std::uint8_t>(rng.below(256));
        std::uint8_t b =
            static_cast<std::uint8_t>(rng.range(1, 255)); // non-zero.
        EXPECT_EQ(GF256::div(a, b), GF256::mul(a, GF256::inv(b)));
        EXPECT_EQ(GF256::mul(GF256::div(a, b), b), a);
    }
}

TEST(Gf256Property, PowLogExpAreConsistent)
{
    for (std::uint64_t it = 0; it < 64; ++it) {
        std::uint64_t seed = caseSeed(2000 + it);
        SCOPED_TRACE("seed=" + std::to_string(seed));
        Rng rng(seed);
        std::uint8_t a =
            static_cast<std::uint8_t>(rng.range(1, 255)); // non-zero.
        int e = static_cast<int>(rng.below(1000)) - 500;

        // a = alpha^log(a); pow via logs matches repeated mul.
        EXPECT_EQ(GF256::alphaPow(GF256::log(a)), a);
        std::uint8_t ref = 1;
        int en = ((e % GF256::kGroupOrder) + GF256::kGroupOrder) %
                 GF256::kGroupOrder;
        for (int i = 0; i < en; ++i)
            ref = GF256::mul(ref, a);
        EXPECT_EQ(GF256::pow(a, e), ref) << "e=" << e;
        // The exponent is periodic in the group order.
        EXPECT_EQ(GF256::alphaPow(e),
                  GF256::alphaPow(e + GF256::kGroupOrder));
    }
}

// --- Reed-Solomon round-trip properties --------------------------------

struct RsShape
{
    int n, k;
};

const std::vector<RsShape> kShapes = {
    {18, 16}, // ARCC relaxed.
    {36, 32}, // ARCC upgraded / commercial SCCDCD.
    {72, 64}, // Chapter 5.1 level 2.
};

/** Corrupt `numErrors` distinct positions with non-zero deltas. */
std::vector<int>
injectErrors(Rng &rng, std::vector<std::uint8_t> &word, int numErrors)
{
    std::vector<int> pos;
    while (static_cast<int>(pos.size()) < numErrors) {
        int p = static_cast<int>(rng.below(word.size()));
        if (std::find(pos.begin(), pos.end(), p) == pos.end())
            pos.push_back(p);
    }
    for (int p : pos)
        word[p] ^= static_cast<std::uint8_t>(rng.range(1, 255));
    return pos;
}

TEST(ReedSolomonProperty, RandomCodewordsRoundTripUnderTErrors)
{
    for (const RsShape &shape : kShapes) {
        ReedSolomon rs(shape.n, shape.k);
        const int t = rs.r() / 2;
        for (std::uint64_t it = 0; it < 48; ++it) {
            std::uint64_t seed =
                caseSeed((shape.n << 16) + it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " k=" + std::to_string(shape.k) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);
            std::vector<std::uint8_t> original = word;
            EXPECT_TRUE(rs.syndromesZero(word));

            // Up to t symbol errors must decode back exactly.
            int e = static_cast<int>(rng.range(0, t));
            injectErrors(rng, word, e);

            DecodeResult res = rs.decode(word);
            EXPECT_TRUE(res.ok());
            EXPECT_EQ(res.symbolsCorrected, e);
            EXPECT_EQ(word, original);
        }
    }
}

TEST(ReedSolomonProperty, ErrorsAndErasuresWithinTwoEPlusFRoundTrip)
{
    for (const RsShape &shape : kShapes) {
        ReedSolomon rs(shape.n, shape.k);
        for (std::uint64_t it = 0; it < 32; ++it) {
            std::uint64_t seed =
                caseSeed(0x50000 + (shape.n << 8) + it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);
            std::vector<std::uint8_t> original = word;

            // Pick e errors + f erasures with 2e + f <= r.
            int f = static_cast<int>(rng.range(0, rs.r()));
            int e = static_cast<int>(rng.range(0, (rs.r() - f) / 2));
            std::vector<int> corrupted =
                injectErrors(rng, word, e + f);
            // The first f corrupted positions are declared erased.
            std::vector<int> erasures(corrupted.begin(),
                                      corrupted.begin() + f);
            std::sort(erasures.begin(), erasures.end());

            DecodeResult res = rs.decode(word, -1, erasures);
            EXPECT_TRUE(res.ok());
            EXPECT_EQ(word, original);
        }
    }
}

TEST(ReedSolomonProperty, BeyondCapabilityNeverSilentlyCorruptsData)
{
    // t+1 .. r errors: the decoder may flag a DUE or (rarely, by
    // aliasing) miscorrect to *some* codeword -- but a decode that
    // reports success with wrong data and zero corrections would be a
    // silent lie.  Whenever the decoder claims Clean, the word must
    // really be a codeword.
    for (const RsShape &shape : kShapes) {
        ReedSolomon rs(shape.n, shape.k);
        const int t = rs.r() / 2;
        for (std::uint64_t it = 0; it < 32; ++it) {
            std::uint64_t seed =
                caseSeed(0x90000 + (shape.n << 8) + it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);

            int e = static_cast<int>(rng.range(t + 1, rs.r()));
            injectErrors(rng, word, e);

            DecodeResult res = rs.decode(word);
            if (res.status != DecodeStatus::Detected) {
                EXPECT_TRUE(rs.syndromesZero(word))
                    << "decoder claimed success on a non-codeword";
            }
        }
    }
}

TEST(ReedSolomonProperty, FailingSeedReproducesTheSameOutcome)
{
    // The reproduction contract itself: re-running a case from its
    // logged seed gives the identical decode outcome.
    ReedSolomon rs(18, 16);
    for (std::uint64_t it = 0; it < 8; ++it) {
        std::uint64_t seed = caseSeed(0xd0000 + it);
        SCOPED_TRACE("seed=" + std::to_string(seed));

        auto run = [&](std::uint64_t s) {
            Rng rng(s);
            std::vector<std::uint8_t> word(18);
            for (int i = 0; i < 16; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);
            injectErrors(rng, word, 3); // beyond capability.
            DecodeResult res = rs.decode(word, 1);
            return std::make_pair(res.status, word);
        };
        auto first = run(seed);
        auto second = run(seed);
        EXPECT_EQ(first.first, second.first);
        EXPECT_EQ(first.second, second.second);
    }
}

} // namespace
} // namespace arcc
