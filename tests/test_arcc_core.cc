/**
 * @file
 * Tests for the ARCC core: page table, scheme codecs, functional
 * memory, and the test-pattern scrubber.
 */

#include <gtest/gtest.h>

#include "arcc/arcc_memory.hh"
#include "arcc/ecc_scheme.hh"
#include "arcc/page_table.hh"
#include "arcc/scrubber.hh"
#include "common/rng.hh"

namespace arcc
{
namespace
{

std::vector<std::uint8_t>
randomLine(Rng &rng, std::size_t bytes = 64)
{
    std::vector<std::uint8_t> v(bytes);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.below(256));
    return v;
}

// --- PageTable ---------------------------------------------------------

TEST(PageTable, BootsUpgradedAndTracksCounts)
{
    PageTable pt(100);
    EXPECT_EQ(pt.count(PageMode::Upgraded), 100u);
    EXPECT_DOUBLE_EQ(pt.upgradedFraction(), 1.0);
    pt.setMode(5, PageMode::Relaxed);
    pt.setMode(6, PageMode::Relaxed);
    EXPECT_EQ(pt.count(PageMode::Relaxed), 2u);
    EXPECT_EQ(pt.count(PageMode::Upgraded), 98u);
    EXPECT_DOUBLE_EQ(pt.upgradedFraction(), 0.98);
    EXPECT_EQ(pt.downgradesPerformed(), 2u);
    pt.setMode(5, PageMode::Upgraded);
    EXPECT_EQ(pt.upgradesPerformed(), 1u);
}

TEST(PageTable, RedundantTransitionsAreNoOps)
{
    PageTable pt(10, PageMode::Relaxed);
    pt.setMode(3, PageMode::Relaxed);
    EXPECT_EQ(pt.upgradesPerformed(), 0u);
    EXPECT_EQ(pt.downgradesPerformed(), 0u);
}

// --- scheme codecs -------------------------------------------------------

struct CodecCase
{
    const char *which;
    int killDevices;
    bool correctable;
};

std::unique_ptr<LineCodec>
makeCodec(const std::string &which)
{
    if (which == "sccdcd")
        return schemes::commercialSccdcd();
    if (which == "dcs")
        return schemes::doubleChipSparing();
    if (which == "relaxed")
        return schemes::arccRelaxed();
    if (which == "upgraded")
        return schemes::arccUpgraded();
    if (which == "upgraded2")
        return schemes::arccUpgraded2();
    if (which == "lot9")
        return schemes::lotEcc9();
    return schemes::lotEcc18();
}

class CodecSweep : public ::testing::TestWithParam<CodecCase>
{
};

TEST_P(CodecSweep, DeviceKillBehaviour)
{
    const CodecCase &c = GetParam();
    auto codec = makeCodec(c.which);
    Rng rng(1000);
    for (int t = 0; t < 60; ++t) {
        auto data = randomLine(rng, codec->dataBytes());
        DeviceSlices slices = codec->encode(data);
        ASSERT_EQ(static_cast<int>(slices.size()), codec->devices());

        // Kill whole devices (Figure 2.1's failure model).
        std::vector<int> victims;
        while (static_cast<int>(victims.size()) < c.killDevices) {
            int v = static_cast<int>(rng.below(codec->devices()));
            if (std::find(victims.begin(), victims.end(), v) ==
                victims.end())
                victims.push_back(v);
        }
        for (int v : victims)
            for (auto &b : slices[v])
                b ^= static_cast<std::uint8_t>(rng.range(1, 255));

        std::vector<std::uint8_t> out(codec->dataBytes());
        DecodeResult res = codec->decode(slices, out);
        if (c.correctable) {
            EXPECT_NE(res.status, DecodeStatus::Detected)
                << c.which << " kill=" << c.killDevices;
            EXPECT_EQ(out, data);
        } else {
            EXPECT_EQ(res.status, DecodeStatus::Detected)
                << c.which << " kill=" << c.killDevices;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChipkillGuarantees, CodecSweep,
    ::testing::Values(
        // Single chipkill correct for every scheme.
        CodecCase{"sccdcd", 1, true}, CodecCase{"relaxed", 1, true},
        CodecCase{"upgraded", 1, true},
        CodecCase{"upgraded2", 1, true}, CodecCase{"lot9", 1, true},
        CodecCase{"lot18", 1, true},
        // Double chipkill: only the sparing decode corrects two.
        CodecCase{"dcs", 2, true}, CodecCase{"sccdcd", 2, false},
        CodecCase{"upgraded", 2, false}, CodecCase{"lot9", 2, false},
        // Guaranteed detection beyond the correction radius.
        CodecCase{"upgraded2", 2, false}),
    [](const ::testing::TestParamInfo<CodecCase> &info) {
        return std::string(info.param.which) + "_kill" +
               std::to_string(info.param.killDevices) +
               (info.param.correctable ? "_corrects" : "_detects");
    });

TEST(CodecSweepExtra, DcsTripleKillIsAlmostAlwaysDetected)
{
    // Three whole-device failures exceed double chip sparing.  A d=5
    // code decoded to radius 2 can occasionally miscorrect a weight-3
    // pattern (it sits at distance >= 2 from other codewords), so the
    // guarantee is statistical, not absolute -- assert the DUE rate
    // dominates and silent *success* never fabricates the original.
    auto codec = makeCodec("dcs");
    Rng rng(2024);
    int detected = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
        auto data = randomLine(rng, codec->dataBytes());
        DeviceSlices slices = codec->encode(data);
        std::vector<int> victims;
        while (victims.size() < 3) {
            int v = static_cast<int>(rng.below(codec->devices()));
            if (std::find(victims.begin(), victims.end(), v) ==
                victims.end())
                victims.push_back(v);
        }
        for (int v : victims)
            for (auto &b : slices[v])
                b ^= static_cast<std::uint8_t>(rng.range(1, 255));
        std::vector<std::uint8_t> out(codec->dataBytes());
        DecodeResult res = codec->decode(slices, out);
        if (res.status == DecodeStatus::Detected)
            ++detected;
        else
            EXPECT_NE(out, data) << "cannot reconstruct 3 lost devices";
    }
    EXPECT_GT(detected, trials * 8 / 10);
}

TEST(CodecGeometry, StorageOverheadMatchesThePaper)
{
    // Relaxed and upgraded store the same 12.5% overhead -- the whole
    // point of the codeword-combining trick (contribution #2).
    auto relaxed = schemes::arccRelaxed();
    auto upgraded = schemes::arccUpgraded();
    auto stored = [](const LineCodec &c) {
        return c.devices() * c.sliceBytes();
    };
    EXPECT_EQ(stored(*relaxed), 72);    // 64B data + 8B check.
    EXPECT_EQ(stored(*upgraded), 144);  // 128B data + 16B check.
    double rel_overhead =
        static_cast<double>(stored(*relaxed)) / relaxed->dataBytes() -
        1.0;
    double upg_overhead =
        static_cast<double>(stored(*upgraded)) /
            upgraded->dataBytes() - 1.0;
    EXPECT_DOUBLE_EQ(rel_overhead, 0.125);
    EXPECT_DOUBLE_EQ(upg_overhead, 0.125);
}

TEST(CodecGeometry, UpgradedSliceFootprintEqualsRelaxed)
{
    // A page upgrade must not move storage: each device keeps 4 bytes
    // per 64B line slot in both modes.
    auto relaxed = schemes::arccRelaxed();
    auto upgraded = schemes::arccUpgraded();
    EXPECT_EQ(relaxed->sliceBytes(), upgraded->sliceBytes());
    EXPECT_EQ(upgraded->devices(), 2 * relaxed->devices());
}

// --- functional memory ---------------------------------------------------

TEST(ArccMemory, RoundTripInBothModes)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(2);
    std::uint64_t page = 3;
    std::uint64_t base = page * kPageBytes;

    // Boot mode is Upgraded.
    auto w1 = randomLine(rng);
    mem.write(base, w1);
    auto r1 = mem.read(base);
    EXPECT_EQ(r1.status, DecodeStatus::Clean);
    EXPECT_EQ(r1.data, w1);

    // Relax the page and round-trip again.
    mem.setPageMode(page, PageMode::Relaxed);
    auto r2 = mem.read(base);
    EXPECT_EQ(r2.data, w1) << "mode change must preserve contents";
    auto w2 = randomLine(rng);
    mem.write(base + 64, w2);
    EXPECT_EQ(mem.read(base + 64).data, w2);
    EXPECT_EQ(mem.read(base).data, w1);
}

TEST(ArccMemory, UpgradePreservesWholePage)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(3);
    std::uint64_t page = 7;
    std::uint64_t base = page * kPageBytes;
    mem.setPageMode(page, PageMode::Relaxed);

    std::vector<std::vector<std::uint8_t>> lines;
    for (std::uint64_t l = 0; l < kLinesPerPage; ++l) {
        lines.push_back(randomLine(rng));
        mem.write(base + l * kLineBytes, lines.back());
    }
    mem.setPageMode(page, PageMode::Upgraded);
    for (std::uint64_t l = 0; l < kLinesPerPage; ++l) {
        auto r = mem.read(base + l * kLineBytes);
        EXPECT_EQ(r.status, DecodeStatus::Clean);
        EXPECT_EQ(r.data, lines[l]) << "line " << l;
    }
}

TEST(ArccMemory, RelaxedModeTouchesHalfTheDevices)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    std::uint64_t page = 1;
    std::uint64_t addr = page * kPageBytes;

    mem.setPageMode(page, PageMode::Relaxed);
    auto before = mem.stats().deviceReads;
    mem.read(addr);
    auto relaxed_touch = mem.stats().deviceReads - before;

    mem.setPageMode(page, PageMode::Upgraded);
    before = mem.stats().deviceReads;
    mem.read(addr);
    auto upgraded_touch = mem.stats().deviceReads - before;

    EXPECT_EQ(relaxed_touch, 18u);
    EXPECT_EQ(upgraded_touch, 36u);
}

TEST(ArccMemory, DeviceFaultIsCorrectedInRelaxedMode)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(4);
    std::uint64_t page = 5;
    std::uint64_t base = page * kPageBytes;
    mem.setPageMode(page, PageMode::Relaxed);
    auto data = randomLine(rng);
    mem.write(base, data);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 7;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    auto r = mem.read(base);
    // Whatever rank/channel the line maps to, at most one device per
    // codeword is bad: the relaxed code must cope.
    EXPECT_NE(r.status, DecodeStatus::Detected);
    EXPECT_EQ(r.data, data);
}

TEST(ArccMemory, TwoDeviceFaultsNeedTheUpgradedMode)
{
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    ArccMemory mem(cfg);
    Rng rng(5);

    // Find a relaxed-mode address on channel 0, rank 0.
    std::uint64_t addr = 0;
    std::uint64_t page = mem.pageOf(addr);
    std::uint64_t base = page * kPageBytes;
    mem.setPageMode(page, PageMode::Relaxed);
    auto data = randomLine(rng);
    mem.write(base, data);

    for (int dev : {2, 9}) {
        FunctionalFault f;
        f.channel = 0;
        f.rank = 0;
        f.device = dev;
        f.scope = FaultScope::Device;
        f.kind = FaultKind::Corrupt;
        mem.injectFault(f);
    }

    // Two bad symbols per relaxed codeword: a DUE (or worse).
    auto r = mem.read(base);
    EXPECT_NE(r.status, DecodeStatus::Clean);

    // Upgrading the page brings four check symbols per codeword --
    // but correction strength under plain ARCC stays 1, so the double
    // fault is now *reliably detected*, not corrected (Section 6.1).
    mem.setPageMode(page, PageMode::Upgraded);
    auto r2 = mem.read(base);
    EXPECT_EQ(r2.status, DecodeStatus::Detected);
}

TEST(ArccMemory, DcsSparingCorrectsTwoFaultsAfterDiagnosis)
{
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.scheme = SchemeKind::ArccDcs;
    ArccMemory mem(cfg);
    Rng rng(6);
    std::uint64_t page = 0;
    std::uint64_t base = 0;
    auto data = randomLine(rng);
    mem.write(base, data); // page boots Upgraded.

    // First device fails and is diagnosed (remapped / erased).
    FunctionalFault f1;
    f1.channel = 0;
    f1.rank = 0;
    f1.device = 3;
    f1.scope = FaultScope::Device;
    f1.kind = FaultKind::Corrupt;
    mem.injectFault(f1);
    mem.spareDevice(0, 0, 3);

    // Second device fails later in the other channel of the pair.
    FunctionalFault f2 = f1;
    f2.channel = 1;
    f2.device = 11;
    mem.injectFault(f2);

    auto r = mem.read(base);
    EXPECT_NE(r.status, DecodeStatus::Detected)
        << "erasure + 1 error is within 2e+f <= 4";
    EXPECT_EQ(r.data, data);
    (void)page;
}

TEST(ArccMemory, StuckAtFaultsRespondToOverlay)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    std::uint64_t addr = 0;
    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 0;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::StuckAt1;
    mem.injectFault(f);

    mem.rawFill(addr, 0x00);
    EXPECT_FALSE(mem.rawCheck(addr, 0x00)) << "stuck-at-1 visible";
    mem.rawFill(addr, 0xff);
    EXPECT_TRUE(mem.rawCheck(addr, 0xff))
        << "all-ones is what a stuck-at-1 device returns anyway";
}

TEST(ArccMemory, RawSnapshotRestoreRoundTrips)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(7);
    auto data = randomLine(rng);
    mem.write(0, data);
    auto snap = mem.rawSnapshot(0);
    mem.rawFill(0, 0xAA);
    mem.rawRestore(0, snap);
    EXPECT_EQ(mem.read(0).data, data);
}

TEST(ArccMemory, BaselineSchemeHasNoUpgradedMode)
{
    ArccMemory mem(FunctionalConfig::baselineSmall());
    EXPECT_EQ(mem.pageTable().mode(0), PageMode::Relaxed);
    EXPECT_EXIT(mem.setPageMode(0, PageMode::Upgraded),
                ::testing::ExitedWithCode(1), "no upgraded mode");
}

TEST(ArccMemory, Level2UpgradeCorrectsAcrossFourChannels)
{
    ArccMemory mem(FunctionalConfig::arccWide());
    Rng rng(8);
    std::uint64_t page = 2;
    std::uint64_t base = page * kPageBytes;
    std::vector<std::vector<std::uint8_t>> lines;
    for (int l = 0; l < 8; ++l) {
        lines.push_back(randomLine(rng));
        mem.write(base + l * kLineBytes, lines[l]);
    }
    mem.setPageMode(page, PageMode::Upgraded2);
    for (int l = 0; l < 8; ++l)
        EXPECT_EQ(mem.read(base + l * kLineBytes).data, lines[l]);

    // RS(72,64) with maxCorrect 2 (ARCC+DCS) rides out two whole-
    // device failures even without sparing diagnosis.
    for (auto [ch, dev] : {std::pair{0, 1}, {2, 5}}) {
        FunctionalFault f;
        f.channel = ch;
        f.rank = 0;
        f.device = dev;
        f.scope = FaultScope::Device;
        f.kind = FaultKind::Corrupt;
        mem.injectFault(f);
    }
    for (int l = 0; l < 8; ++l) {
        auto r = mem.read(base + l * kLineBytes);
        EXPECT_NE(r.status, DecodeStatus::Detected) << l;
        EXPECT_EQ(r.data, lines[l]) << l;
    }
}

// --- scrubber ------------------------------------------------------------

TEST(Scrubber, CleanMemoryStaysCleanAndRelaxes)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(9);
    for (std::uint64_t p = 0; p < 4; ++p)
        mem.write(p * kPageBytes, randomLine(rng));

    Scrubber scrubber;
    ScrubReport boot = scrubber.bootScrub(mem);
    EXPECT_TRUE(boot.faultyPages.empty());
    EXPECT_EQ(boot.pagesRelaxed, mem.pageTable().pages());
    EXPECT_EQ(mem.pageTable().count(PageMode::Relaxed),
              mem.pageTable().pages());
    // Contents survived the 0x00/0xff test patterns.
    EXPECT_EQ(mem.read(0).data.size(), kLineBytes);
}

TEST(Scrubber, HiddenStuckAtFaultIsFoundOnlyByTestPatterns)
{
    // A stuck-at-1 in a location whose content is currently all-1s is
    // invisible to a read-only scrub; the paper's write-0/write-1
    // pattern scrub (Section 4.2.2) must find it.
    FunctionalConfig cfg = FunctionalConfig::arccSmall();

    auto run = [&](bool test_patterns) {
        ArccMemory mem(cfg);
        Scrubber(ScrubberConfig{.testPatterns = false,
                                .relaxCleanPages = true,
                                .allowLevel2 = false})
            .scrub(mem);
        std::vector<std::uint8_t> ones(64, 0xff);
        mem.write(0, ones); // content matches the stuck value.
        FunctionalFault f;
        f.channel = 0;
        f.rank = 0;
        f.device = 1;
        // A single stuck cell under the line whose content is all-1s:
        // a read-only scrub sees nothing anywhere.
        f.scope = FaultScope::Cell;
        f.bank = 0;
        f.row = 0;
        f.col = 0;
        f.kind = FaultKind::StuckAt1;
        mem.injectFault(f);

        ScrubberConfig sc;
        sc.testPatterns = test_patterns;
        ScrubReport rep = Scrubber(sc).scrub(mem);
        return rep.faultyPages.size();
    };

    EXPECT_EQ(run(false), 0u) << "conventional scrub misses it";
    EXPECT_GT(run(true), 0u) << "pattern scrub must find it";
}

TEST(Scrubber, FaultyPageIsUpgradedAndDataSurvives)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(10);
    Scrubber scrubber;
    scrubber.bootScrub(mem); // everything relaxed.

    std::vector<std::vector<std::uint8_t>> lines;
    std::uint64_t page = 0;
    for (std::uint64_t l = 0; l < kLinesPerPage; ++l) {
        lines.push_back(randomLine(rng));
        mem.write(page * kPageBytes + l * kLineBytes, lines[l]);
    }

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 4;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    ScrubReport rep = scrubber.scrub(mem);
    EXPECT_FALSE(rep.faultyPages.empty());
    EXPECT_GT(rep.pagesUpgraded, 0u);
    EXPECT_EQ(mem.pageTable().mode(page), PageMode::Upgraded);

    for (std::uint64_t l = 0; l < kLinesPerPage; ++l) {
        auto r = mem.read(page * kPageBytes + l * kLineBytes);
        EXPECT_NE(r.status, DecodeStatus::Detected);
        EXPECT_EQ(r.data, lines[l]) << "line " << l;
    }
}

TEST(Scrubber, OnlyAffectedPagesAreUpgraded)
{
    // A device fault in rank 0 must upgrade rank-0 pages and leave
    // rank-1 pages relaxed: the page-by-page reaction that drives the
    // whole power story (Table 7.4).
    ArccMemory mem(FunctionalConfig::arccSmall());
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 2;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);
    scrubber.scrub(mem);

    double upgraded = mem.pageTable().upgradedFraction();
    EXPECT_NEAR(upgraded, 0.5, 0.01)
        << "device fault upgrades one of the two ranks (Table 7.4)";
}

TEST(Scrubber, BankFaultUpgradesItsBankShare)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Scrubber scrubber;
    scrubber.bootScrub(mem);
    FunctionalFault f;
    f.channel = 1;
    f.rank = 1;
    f.device = 0;
    f.scope = FaultScope::Bank;
    f.bank = 1;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);
    scrubber.scrub(mem);
    // 2 ranks x 2 banks in the small config: 1/4 of pages.
    EXPECT_NEAR(mem.pageTable().upgradedFraction(), 0.25, 0.01);
}

TEST(Scrubber, ClosedFormOverheadMatchesSection422)
{
    // 4 GB over a 128-bit 667 MT/s channel: 0.4 s per pass, 2.4 s per
    // scrub, 0.0167% of bandwidth at one scrub per 4 hours.
    double bus_bytes = 667e6 * 16.0;
    double pass = 4.0 * 1024 * 1024 * 1024 / bus_bytes;
    EXPECT_NEAR(pass, 0.4, 0.01);
    double scrub = Scrubber::scrubSeconds(4.0 * 1024 * 1024 * 1024,
                                          bus_bytes);
    EXPECT_NEAR(scrub, 2.4, 0.1);
    EXPECT_NEAR(Scrubber::bandwidthFraction(scrub, 4.0), 0.000167,
                0.00002);
}

TEST(Scrubber, SecondFaultEscalatesToLevel2)
{
    ArccMemory mem(FunctionalConfig::arccWide());
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 3;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);
    scrubber.scrub(mem);
    EXPECT_GT(mem.pageTable().count(PageMode::Upgraded), 0u);

    // The same pages keep failing the scrub (hard fault): next scrub
    // escalates them to the 8-check-symbol mode of Chapter 5.1.
    scrubber.scrub(mem);
    EXPECT_GT(mem.pageTable().count(PageMode::Upgraded2), 0u);
}

} // namespace
} // namespace arcc
