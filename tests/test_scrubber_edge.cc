/**
 * @file
 * Scrubber edge coverage, exercised through BOTH sweep paths (the
 * serial reference scrub() and the engine-sharded scrubParallel()):
 *
 *  - a stuck-at-1 fault masked by matching data (only the write-0
 *    pattern can see it);
 *  - relax-on-boot demoting an all-clean memory;
 *  - the level-2 escalation path of Chapter 5.1;
 *  - an empty memory (0 pages / 0 lines).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "arcc/scrubber.hh"
#include "common/rng.hh"
#include "engine/sim_engine.hh"

namespace arcc
{
namespace
{

/** Run one scrub through the path under test. */
enum class Path
{
    Serial,
    Parallel,
};

ScrubReport
runScrub(const Scrubber &scrubber, ArccMemory &mem, Path path,
         SimEngine *engine)
{
    return path == Path::Serial ? scrubber.scrub(mem)
                                : scrubber.scrubParallel(mem, engine);
}

class ScrubberEdge : public ::testing::TestWithParam<Path>
{
  protected:
    SimEngine engine_{SimEngine::Options{3}};

    ScrubReport
    doScrub(const Scrubber &scrubber, ArccMemory &mem)
    {
        return runScrub(scrubber, mem, GetParam(), &engine_);
    }
};

TEST_P(ScrubberEdge, StuckAt1MaskedByMatchingDataNeedsPatterns)
{
    // Content that happens to equal the stuck value hides the fault
    // from a read-only scrub; only the write-0 pass exposes it.
    auto run = [&](bool test_patterns) {
        ArccMemory mem(FunctionalConfig::arccSmall());
        Scrubber(ScrubberConfig{.testPatterns = false,
                                .relaxCleanPages = true,
                                .allowLevel2 = false})
            .scrub(mem);
        std::vector<std::uint8_t> ones(kLineBytes, 0xff);
        mem.write(0, ones); // data matches the stuck-at-1 value.

        FunctionalFault f;
        f.channel = 0;
        f.rank = 0;
        f.device = 1;
        f.scope = FaultScope::Cell;
        f.bank = 0;
        f.row = 0;
        f.col = 0;
        f.kind = FaultKind::StuckAt1;
        mem.injectFault(f);

        ScrubberConfig sc;
        sc.testPatterns = test_patterns;
        ScrubReport rep = doScrub(Scrubber(sc), mem);
        return rep;
    };

    ScrubReport blind = run(false);
    EXPECT_TRUE(blind.faultyPages.empty())
        << "a read-only scrub must miss the masked fault";
    EXPECT_EQ(blind.stuckAt1Found, 0u);

    ScrubReport seeing = run(true);
    EXPECT_FALSE(seeing.faultyPages.empty())
        << "the pattern scrub must find it";
    EXPECT_GT(seeing.stuckAt1Found, 0u);
    EXPECT_GT(seeing.pagesUpgraded, 0u);
}

TEST_P(ScrubberEdge, RelaxOnBootDemotesAnAllCleanMemory)
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(7);
    for (std::uint64_t p = 0; p < mem.pageTable().pages(); ++p) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(p * kPageBytes, line);
    }
    ASSERT_EQ(mem.pageTable().count(PageMode::Upgraded),
              mem.pageTable().pages())
        << "ARCC boots every page upgraded";

    Scrubber scrubber;
    ScrubReport rep = GetParam() == Path::Serial
                          ? scrubber.bootScrub(mem)
                          : scrubber.bootScrubParallel(mem, &engine_);

    EXPECT_TRUE(rep.faultyPages.empty());
    EXPECT_EQ(rep.pagesRelaxed, mem.pageTable().pages());
    EXPECT_EQ(rep.pagesUpgraded, 0u);
    EXPECT_EQ(mem.pageTable().count(PageMode::Relaxed),
              mem.pageTable().pages());
    // Content survived the demotion and the test patterns.
    EXPECT_EQ(mem.read(0).status, DecodeStatus::Clean);
}

TEST_P(ScrubberEdge, HardFaultEscalatesToLevel2OnTheSecondScrub)
{
    ArccMemory mem(FunctionalConfig::arccWide());
    Scrubber scrubber;
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 3;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    ScrubReport first = doScrub(scrubber, mem);
    EXPECT_GT(first.pagesUpgraded, 0u);
    EXPECT_GT(mem.pageTable().count(PageMode::Upgraded), 0u);
    EXPECT_EQ(mem.pageTable().count(PageMode::Upgraded2), 0u);

    // The hard fault keeps failing: the next scrub escalates the
    // affected pages to the 8-check-symbol level-2 mode.
    ScrubReport second = doScrub(scrubber, mem);
    EXPECT_GT(second.pagesUpgraded, 0u);
    EXPECT_GT(mem.pageTable().count(PageMode::Upgraded2), 0u);
}

TEST_P(ScrubberEdge, Level2EscalationIsGatedByTheConfig)
{
    // Same fault, but the scrubber refuses to escalate when its own
    // allowLevel2 knob is off.
    ArccMemory mem(FunctionalConfig::arccWide());
    ScrubberConfig cfg;
    cfg.allowLevel2 = false;
    Scrubber scrubber(cfg);
    scrubber.bootScrub(mem);

    FunctionalFault f;
    f.channel = 0;
    f.rank = 0;
    f.device = 3;
    f.scope = FaultScope::Device;
    f.kind = FaultKind::Corrupt;
    mem.injectFault(f);

    doScrub(scrubber, mem);
    doScrub(scrubber, mem);
    EXPECT_EQ(mem.pageTable().count(PageMode::Upgraded2), 0u);
}

TEST_P(ScrubberEdge, EmptyMemoryScrubsToAnAllZeroReport)
{
    FunctionalConfig cfg = FunctionalConfig::arccSmall();
    cfg.rows = 0; // 0 lines, 0 pages.
    ArccMemory mem(cfg);
    ASSERT_EQ(mem.capacity(), 0u);
    ASSERT_EQ(mem.pageTable().pages(), 0u);

    Scrubber scrubber;
    ScrubReport rep = doScrub(scrubber, mem);
    EXPECT_EQ(rep.linesScrubbed, 0u);
    EXPECT_EQ(rep.errorsCorrected, 0u);
    EXPECT_EQ(rep.duesFound, 0u);
    EXPECT_EQ(rep.stuckAt1Found, 0u);
    EXPECT_EQ(rep.stuckAt0Found, 0u);
    EXPECT_TRUE(rep.faultyPages.empty());
    EXPECT_EQ(rep.pagesUpgraded, 0u);
    EXPECT_EQ(rep.pagesRelaxed, 0u);

    // Both sweeps agree on the degenerate case too.
    ScrubReport other = runScrub(
        scrubber, mem,
        GetParam() == Path::Serial ? Path::Parallel : Path::Serial,
        &engine_);
    EXPECT_EQ(rep, other);
}

INSTANTIATE_TEST_SUITE_P(BothSweeps, ScrubberEdge,
                         ::testing::Values(Path::Serial,
                                           Path::Parallel),
                         [](const auto &info) {
                             return info.param == Path::Serial
                                        ? "Serial"
                                        : "Parallel";
                         });

} // namespace
} // namespace arcc
