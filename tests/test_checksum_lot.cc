/**
 * @file
 * Ones'-complement checksum and LOT-ECC tests, including the paper's
 * detection-guarantee caveat (Chapter 2).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/checksum.hh"
#include "ecc/lot_ecc.hh"

namespace arcc
{
namespace
{

TEST(OnesComplement16, ZeroBufferChecksumsToComplementOfZero)
{
    // The Internet-checksum convention: the stored value is ~sum, so a
    // zero buffer carries 0xffff -- which is exactly what defeats a
    // stuck-at-0 device (slice AND checksum read 0, mismatch).
    std::vector<std::uint8_t> zeros(8, 0);
    EXPECT_EQ(OnesComplement16::compute(zeros), 0xffff);
    EXPECT_TRUE(OnesComplement16::verify(zeros, 0xffff));
    EXPECT_FALSE(OnesComplement16::verify(zeros, 0));
}

TEST(OnesComplement16, DetectsSingleBitFlipsInEveryPosition)
{
    Rng rng(1);
    std::vector<std::uint8_t> buf(8);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.below(256));
    std::uint16_t sum = OnesComplement16::compute(buf);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit) {
            auto copy = buf;
            copy[i] ^= static_cast<std::uint8_t>(1 << bit);
            EXPECT_FALSE(OnesComplement16::verify(copy, sum))
                << "byte " << i << " bit " << bit;
        }
    }
}

TEST(OnesComplement16, DetectsAllZerosAndAllOnesDeviceOutput)
{
    // The LOT-ECC guarantee the paper cites: a device whose output is
    // stuck all-0 or all-1 is always caught (unless the true content
    // was exactly that pattern with a matching sum).
    Rng rng(2);
    for (int t = 0; t < 200; ++t) {
        std::vector<std::uint8_t> buf(8);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.range(1, 254));
        std::uint16_t sum = OnesComplement16::compute(buf);
        std::vector<std::uint8_t> zeros(8, 0), ones(8, 0xff);
        EXPECT_FALSE(OnesComplement16::verify(zeros, sum));
        EXPECT_FALSE(OnesComplement16::verify(ones, sum));
    }
}

TEST(OnesComplement16, CanAliasOnCompensatingChanges)
{
    // The caveat: two compensating word changes keep the sum -- the
    // checksum is NOT a guaranteed detector of arbitrary corruption.
    std::vector<std::uint8_t> buf = {0x00, 0x01, 0x00, 0x02};
    std::uint16_t sum = OnesComplement16::compute(buf);
    std::vector<std::uint8_t> alias = {0x00, 0x02, 0x00, 0x01};
    EXPECT_TRUE(OnesComplement16::verify(alias, sum));
}

TEST(OnesComplement16, OddLengthPadsWithZero)
{
    std::vector<std::uint8_t> odd = {0xab};
    std::vector<std::uint8_t> even = {0xab, 0x00};
    EXPECT_EQ(OnesComplement16::compute(odd),
              OnesComplement16::compute(even));
}

TEST(XorInto, IsItsOwnInverse)
{
    Rng rng(3);
    std::vector<std::uint8_t> a(16), b(16);
    for (auto &v : a)
        v = static_cast<std::uint8_t>(rng.below(256));
    for (auto &v : b)
        v = static_cast<std::uint8_t>(rng.below(256));
    auto orig = a;
    xorInto(a, b);
    xorInto(a, b);
    EXPECT_EQ(a, orig);
}

// --- LOT-ECC ----------------------------------------------------------

class LotEccSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LotEccSweep, RoundTripAndExtract)
{
    LotEcc lot(GetParam());
    Rng rng(10 + GetParam());
    for (int t = 0; t < 100; ++t) {
        std::vector<std::uint8_t> line(64);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        LotLine enc = lot.encode(line);
        EXPECT_EQ(lot.decode(enc).status, DecodeStatus::Clean);
        EXPECT_EQ(lot.extract(enc), line);
    }
}

TEST_P(LotEccSweep, SingleDeviceCorruptionIsLocalisedAndRepaired)
{
    LotEcc lot(GetParam());
    Rng rng(20 + GetParam());
    for (int t = 0; t < 200; ++t) {
        std::vector<std::uint8_t> line(64);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        LotLine enc = lot.encode(line);
        int victim =
            static_cast<int>(rng.below(lot.dataDevices() + 1));
        // Corrupt the victim slice thoroughly (decoder-style garbage).
        for (auto &b : enc.slices[victim])
            b ^= static_cast<std::uint8_t>(rng.range(1, 255));
        LotDecodeResult res = lot.decode(enc);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(res.deviceCorrected, victim);
        EXPECT_EQ(lot.extract(enc), line);
    }
}

TEST_P(LotEccSweep, StuckDeviceOutputAlwaysCaught)
{
    LotEcc lot(GetParam());
    Rng rng(30 + GetParam());
    for (int t = 0; t < 100; ++t) {
        std::vector<std::uint8_t> line(64);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.range(1, 254));
        LotLine enc = lot.encode(line);
        int victim = static_cast<int>(rng.below(lot.dataDevices()));
        std::uint8_t stuck = rng.chance(0.5) ? 0x00 : 0xff;
        std::fill(enc.slices[victim].begin(), enc.slices[victim].end(),
                  stuck);
        // The stored checksum stays what it was; the slice no longer
        // matches it (the all-0/all-1 guarantee from Chapter 2).
        LotDecodeResult res = lot.decode(enc);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(res.deviceCorrected, victim);
        EXPECT_EQ(lot.extract(enc), line);
    }
}

TEST_P(LotEccSweep, TwoBadDevicesAreDetectedNotMiscorrected)
{
    LotEcc lot(GetParam());
    Rng rng(40 + GetParam());
    for (int t = 0; t < 200; ++t) {
        // Content bytes in [1, 254] so a stuck-at-0 / stuck-at-1 slice
        // is guaranteed to mismatch its checksum -- two *guaranteed*
        // mismatches must yield a DUE, never a reconstruction.
        std::vector<std::uint8_t> line(64);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.range(1, 254));
        LotLine enc = lot.encode(line);
        int a = static_cast<int>(rng.below(lot.dataDevices()));
        int b;
        do {
            b = static_cast<int>(rng.below(lot.dataDevices()));
        } while (b == a);
        std::fill(enc.slices[a].begin(), enc.slices[a].end(), 0x00);
        std::fill(enc.slices[b].begin(), enc.slices[b].end(), 0xff);
        LotDecodeResult res = lot.decode(enc);
        EXPECT_EQ(res.status, DecodeStatus::Detected);
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, LotEccSweep,
                         ::testing::Values(8, 16));

TEST(LotEcc, RejectsBadGeometry)
{
    EXPECT_EXIT(LotEcc(7), ::testing::ExitedWithCode(1), "8 or 16");
}

TEST(LotEcc, ChecksumAliasingCorruptionCanSlipThrough)
{
    // Build a corruption that keeps the slice checksum valid: the
    // decode honestly reports Clean even though data changed.  This is
    // the fidelity the SDC discussion relies on.
    LotEcc lot(8);
    std::vector<std::uint8_t> line(64, 0);
    line[0] = 0x00;
    line[1] = 0x01;
    line[2] = 0x00;
    line[3] = 0x02;
    LotLine enc = lot.encode(line);
    std::swap(enc.slices[0][1], enc.slices[0][3]); // compensating swap.
    EXPECT_EQ(lot.decode(enc).status, DecodeStatus::Clean);
    EXPECT_NE(lot.extract(enc), line);
}

} // namespace
} // namespace arcc
