/**
 * @file
 * Fault-model tests: rates, Table 7.4 page fractions, sampling.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "faults/fault_model.hh"
#include "faults/lifetime_mc.hh"

namespace arcc
{
namespace
{

TEST(FaultRates, FieldStudyTotalsAreInThePaperRange)
{
    FaultRates r = FaultRates::fieldStudy();
    EXPECT_GT(r.totalFit(), 30.0);
    EXPECT_LT(r.totalFit(), 120.0);
    // A 36-device DIMM's any-fault incidence per year should be of the
    // order the paper quotes (2.95% [2] to 8% [1]); we land near the
    // bottom of that range.
    double per_dimm_year = fitToPerYear(r.totalFit()) * 36.0;
    EXPECT_GT(per_dimm_year, 0.01);
    EXPECT_LT(per_dimm_year, 0.08);
}

TEST(FaultRates, ScalingIsUniform)
{
    FaultRates r = FaultRates::fieldStudy();
    FaultRates r4 = r.scaled(4.0);
    for (FaultType t : allFaultTypes())
        EXPECT_DOUBLE_EQ(r4[t], 4.0 * r[t]);
    EXPECT_DOUBLE_EQ(r4.totalFit(), 4.0 * r.totalFit());
}

TEST(DomainGeometry, Table74UpgradeFractions)
{
    // The ARCC memory of Table 7.1: 2 ranks per channel-pair, 8 banks.
    DomainGeometry g;
    g.ranks = 2;
    g.banksPerDevice = 8;
    g.pages = 1048576;
    g.pagesPerRow = 2;
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Lane), 1.0);
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Device), 1.0 / 2);
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Bank), 1.0 / 16);
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Column), 1.0 / 32);
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Row), 2.0 / 1048576);
    EXPECT_DOUBLE_EQ(g.pageFraction(FaultType::Bit), 1.0 / 1048576);
}

TEST(DomainGeometryDeathTest, UnhandledFaultTypeIsFatal)
{
    // The switch in pageFraction is exhaustive over FaultType; a value
    // outside the enum (a future type the switch forgot) must die
    // loudly instead of silently contributing 0 to every reliability
    // number.
    DomainGeometry g;
    EXPECT_EXIT(g.pageFraction(static_cast<FaultType>(99)),
                ::testing::ExitedWithCode(1),
                "unhandled fault type 99");
}

TEST(FaultSampler, SortEventsIsStableOnTimestampTies)
{
    // Forced ties: interleave three timestamps across fault types in
    // type-major insertion order, as sampleLifetime produces them.  A
    // stable sort must keep that insertion order within each tie
    // group; std::sort was free to permute it differently per
    // standard library, which broke cross-toolchain golden pinning.
    std::vector<FaultEvent> events;
    int device = 0;
    for (FaultType t : allFaultTypes()) {
        for (double time : {2.0, 1.0, 2.0}) {
            FaultEvent e;
            e.timeHours = time;
            e.type = t;
            e.device = device++; // Unique tag per insertion.
            events.push_back(e);
        }
    }
    FaultSampler::sortEvents(events);

    ASSERT_EQ(events.size(), 21u);
    // First seven: the time==1.0 events, one per type in enum order.
    for (int i = 0; i < 7; ++i) {
        EXPECT_DOUBLE_EQ(events[i].timeHours, 1.0);
        EXPECT_EQ(events[i].type, allFaultTypes()[i]) << i;
        EXPECT_EQ(events[i].device, i * 3 + 1) << i;
    }
    // Remaining fourteen: the time==2.0 ties in insertion order --
    // both events of type 0 before both events of type 1, and within
    // a type the earlier insertion first.
    for (int i = 0; i < 14; ++i) {
        const FaultEvent &e = events[7 + i];
        EXPECT_DOUBLE_EQ(e.timeHours, 2.0);
        EXPECT_EQ(e.type, allFaultTypes()[i / 2]) << i;
        EXPECT_EQ(e.device, (i / 2) * 3 + (i % 2 == 0 ? 0 : 2)) << i;
    }
}

TEST(FaultSampler, EventCountMatchesRates)
{
    DomainGeometry g;
    FaultRates r = FaultRates::fieldStudy();
    FaultSampler sampler(g, r);
    Rng rng(5);
    const double hours = 7 * kHoursPerYear;
    double total = 0.0;
    const int trials = 2000;
    for (int t = 0; t < trials; ++t) {
        Rng tr = rng.fork();
        total += static_cast<double>(
            sampler.sampleLifetime(hours, tr).size());
    }
    double expected =
        fitToPerHour(r.totalFit()) * g.totalDevices() * hours;
    EXPECT_NEAR(total / trials, expected, expected * 0.15);
}

TEST(FaultSampler, EventsAreSortedAndInRange)
{
    DomainGeometry g;
    FaultSampler sampler(g, FaultRates::fieldStudy().scaled(2000.0));
    Rng rng(6);
    const double hours = kHoursPerYear;
    auto events = sampler.sampleLifetime(hours, rng);
    ASSERT_GT(events.size(), 20u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_GE(events[i].timeHours, 0.0);
        EXPECT_LE(events[i].timeHours, hours);
        EXPECT_LT(events[i].rank, g.ranks);
        EXPECT_LT(events[i].bank, g.banksPerDevice);
        EXPECT_LT(events[i].device, g.devicesPerRank);
        if (i > 0) {
            EXPECT_GE(events[i].timeHours, events[i - 1].timeHours);
        }
    }
}

// --- lifetime Monte Carlo ----------------------------------------------

TEST(LifetimeMc, AffectedFractionIsMonotoneAndMatchesAnalytic)
{
    LifetimeMcConfig cfg;
    cfg.channels = 3000;
    cfg.years = 7.0;
    cfg.gridPerYear = 4;
    LifetimeMc mc(cfg);
    AffectedCurve curve = mc.affectedFraction();
    ASSERT_EQ(curve.timeYears.size(), curve.avgFraction.size());
    for (std::size_t i = 1; i < curve.avgFraction.size(); ++i)
        EXPECT_GE(curve.avgFraction[i], curve.avgFraction[i - 1]);
    double mc7 = curve.avgFraction.back();
    double an7 = mc.analyticAffectedFraction(7.0);
    EXPECT_NEAR(mc7, an7, an7 * 0.25 + 1e-4);
    // "Just a few percent during most of the lifetime" (Chapter 3).
    EXPECT_LT(mc7, 0.05);
    EXPECT_GT(mc7, 0.001);
}

TEST(LifetimeMc, FourXRatesRoughlyQuadrupleTheFraction)
{
    LifetimeMcConfig cfg;
    cfg.channels = 3000;
    cfg.gridPerYear = 2;
    LifetimeMc mc1(cfg);
    cfg.rates = FaultRates::fieldStudy().scaled(4.0);
    LifetimeMc mc4(cfg);
    double f1 = mc1.affectedFraction().avgFraction.back();
    double f4 = mc4.affectedFraction().avgFraction.back();
    EXPECT_GT(f4, 2.5 * f1);
    EXPECT_LT(f4, 4.5 * f1);
}

TEST(LifetimeMc, OverheadCurveGrowsAndRespectsCap)
{
    LifetimeMcConfig cfg;
    cfg.channels = 2000;
    // Extreme rates so the cap actually binds.
    cfg.rates = FaultRates::fieldStudy().scaled(3000.0);
    LifetimeMc mc(cfg);
    PerTypeOverhead overhead{};
    for (FaultType t : allFaultTypes())
        overhead[static_cast<int>(t)] = 0.5;
    auto by_year = mc.cumulativeOverheadByYear(overhead, 1.0);
    ASSERT_EQ(by_year.size(), 7u);
    for (std::size_t y = 1; y < by_year.size(); ++y)
        EXPECT_GE(by_year[y], by_year[y - 1] - 1e-12);
    for (double v : by_year)
        EXPECT_LE(v, 1.0 + 1e-12);
    EXPECT_GT(by_year.back(), 0.5);
}

TEST(LifetimeMc, ZeroOverheadFaultsCostNothing)
{
    LifetimeMcConfig cfg;
    cfg.channels = 500;
    LifetimeMc mc(cfg);
    PerTypeOverhead overhead{};
    auto by_year = mc.cumulativeOverheadByYear(overhead, 1.0);
    for (double v : by_year)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(LifetimeMc, DeterministicForAGivenSeed)
{
    LifetimeMcConfig cfg;
    cfg.channels = 500;
    cfg.gridPerYear = 2;
    LifetimeMc a(cfg), b(cfg);
    EXPECT_EQ(a.affectedFraction().avgFraction,
              b.affectedFraction().avgFraction);
}

} // namespace
} // namespace arcc
