/**
 * @file
 * GF(2^8) field-axiom and table tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/gf256.hh"

namespace arcc
{
namespace
{

TEST(GF256, TablesAreConsistent)
{
    const auto &exp = GF256::expTable();
    const auto &log = GF256::logTable();
    // alpha^0 == 1 and log(1) == 0.
    EXPECT_EQ(exp[0], 1);
    EXPECT_EQ(log[1], 0);
    // exp and log are inverse bijections on the non-zero elements.
    for (int i = 0; i < GF256::kGroupOrder; ++i)
        EXPECT_EQ(log[exp[i]], i);
}

TEST(GF256, ExpTableCoversAllNonZeroElements)
{
    std::array<bool, 256> seen{};
    for (int i = 0; i < GF256::kGroupOrder; ++i)
        seen[GF256::expTable()[i]] = true;
    EXPECT_FALSE(seen[0]);
    for (int v = 1; v < 256; ++v)
        EXPECT_TRUE(seen[v]) << "element " << v << " unreachable";
}

TEST(GF256, AddIsXor)
{
    EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
    EXPECT_EQ(GF256::add(0xff, 0xff), 0);
}

TEST(GF256, MulIdentityAndZero)
{
    for (int a = 0; a < 256; ++a) {
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 1), a);
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), 0), 0);
        EXPECT_EQ(GF256::mul(0, static_cast<std::uint8_t>(a)), 0);
    }
}

TEST(GF256, MulMatchesCarrylessReference)
{
    // Reference: schoolbook carry-less multiply then reduce by 0x11d.
    auto ref = [](std::uint8_t a, std::uint8_t b) {
        std::uint16_t prod = 0;
        for (int i = 0; i < 8; ++i)
            if (b & (1 << i))
                prod ^= static_cast<std::uint16_t>(a) << i;
        for (int i = 15; i >= 8; --i)
            if (prod & (1 << i))
                prod ^= GF256::kPoly << (i - 8);
        return static_cast<std::uint8_t>(prod);
    };
    Rng rng(7);
    for (int t = 0; t < 4096; ++t) {
        auto a = static_cast<std::uint8_t>(rng.below(256));
        auto b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(GF256::mul(a, b), ref(a, b))
            << static_cast<int>(a) << " * " << static_cast<int>(b);
    }
}

TEST(GF256, MulIsCommutativeAndAssociative)
{
    Rng rng(11);
    for (int t = 0; t < 2048; ++t) {
        auto a = static_cast<std::uint8_t>(rng.below(256));
        auto b = static_cast<std::uint8_t>(rng.below(256));
        auto c = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
    }
}

TEST(GF256, MulDistributesOverAdd)
{
    Rng rng(13);
    for (int t = 0; t < 2048; ++t) {
        auto a = static_cast<std::uint8_t>(rng.below(256));
        auto b = static_cast<std::uint8_t>(rng.below(256));
        auto c = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
    }
}

TEST(GF256, InverseIsExactForAllNonZero)
{
    for (int a = 1; a < 256; ++a) {
        std::uint8_t inv = GF256::inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1)
            << "inv(" << a << ")";
    }
}

TEST(GF256, DivisionInvertsMultiplication)
{
    Rng rng(17);
    for (int t = 0; t < 2048; ++t) {
        auto a = static_cast<std::uint8_t>(rng.below(256));
        auto b = static_cast<std::uint8_t>(rng.range(1, 255));
        EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
    }
}

TEST(GF256, AlphaPowHandlesNegativeExponents)
{
    for (int e = -600; e <= 600; ++e) {
        std::uint8_t direct = GF256::alphaPow(e);
        // alpha^e * alpha^-e == 1.
        EXPECT_EQ(GF256::mul(direct, GF256::alphaPow(-e)), 1);
    }
}

TEST(GF256, MulTableMatchesLogExpFormula)
{
    // The 64 KiB product table is exhaustively the log/exp multiply
    // it replaced (zero rows/columns included).
    for (int a = 0; a < 256; ++a) {
        for (int b = 0; b < 256; ++b) {
            std::uint8_t expect = 0;
            if (a != 0 && b != 0) {
                int s = GF256::logTable()[a] + GF256::logTable()[b];
                if (s >= GF256::kGroupOrder)
                    s -= GF256::kGroupOrder;
                expect = GF256::expTable()[s];
            }
            ASSERT_EQ(GF256::mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)),
                      expect)
                << a << " * " << b;
        }
    }
}

TEST(GF256, MulRowIsTheFixedMultiplicandView)
{
    Rng rng(23);
    for (int t = 0; t < 64; ++t) {
        auto a = static_cast<std::uint8_t>(rng.below(256));
        GF256::MulRow row = GF256::mulRow(a);
        for (int x = 0; x < 256; ++x)
            ASSERT_EQ(row(static_cast<std::uint8_t>(x)),
                      GF256::mul(a, static_cast<std::uint8_t>(x)))
                << static_cast<int>(a) << " * " << x;
    }
}

#ifndef NDEBUG
TEST(GF256DeathTest, ZeroOperandsAreCaughtInDebugBuilds)
{
    // log(0) / div-by-0 / inv(0) silently alias other elements if let
    // through (log[0] is stored as 0); the debug asserts make the
    // caller bug loud instead.
    EXPECT_DEATH(GF256::log(0), "log of zero");
    EXPECT_DEATH(GF256::div(5, 0), "div by zero");
    EXPECT_DEATH(GF256::inv(0), "inv of zero");
}
#endif

TEST(GF256, PowMatchesRepeatedMul)
{
    Rng rng(19);
    for (int t = 0; t < 512; ++t) {
        auto a = static_cast<std::uint8_t>(rng.range(1, 255));
        int e = static_cast<int>(rng.below(16));
        std::uint8_t expect = 1;
        for (int i = 0; i < e; ++i)
            expect = GF256::mul(expect, a);
        EXPECT_EQ(GF256::pow(a, e), expect);
    }
    EXPECT_EQ(GF256::pow(0, 0), 1);
    EXPECT_EQ(GF256::pow(0, 5), 0);
}

} // namespace
} // namespace arcc
