/**
 * @file
 * StreamingHistogram tests: exact counters, quantile accuracy bounds,
 * merge associativity/exactness (the property the campaign's
 * determinism rests on), serialization round-trips, and the fatal
 * paths for NaN samples, shape mismatches and truncated blobs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/sketch.hh"

namespace arcc
{
namespace
{

StreamingHistogram
filled(double lo, double hi, std::uint32_t bins,
       const std::vector<double> &samples)
{
    StreamingHistogram h(lo, hi, bins);
    for (double s : samples)
        h.add(s);
    return h;
}

TEST(Sketch, CountersAreExact)
{
    StreamingHistogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);

    h.add(-1.0); // underflow
    h.add(0.0);
    h.add(5.5);
    h.add(10.0); // hi is exclusive: overflow
    h.add(42.0); // overflow

    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_DOUBLE_EQ(h.sum(), 56.5);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 42.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
}

TEST(Sketch, QuantileWithinOneBinWidth)
{
    // 10k uniform samples in [0, 1): every interior quantile must
    // land within one bin width of the truth, and the extremes clamp
    // to the exact min/max.
    Rng rng(11);
    std::vector<double> samples;
    for (int i = 0; i < 10000; ++i)
        samples.push_back(rng.uniform());
    StreamingHistogram h = filled(0.0, 1.0, 64, samples);

    std::sort(samples.begin(), samples.end());
    const double bin_width = 1.0 / 64.0;
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double exact =
            samples[static_cast<std::size_t>(q * samples.size())];
        EXPECT_NEAR(h.quantile(q), exact, bin_width) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), h.min());
    EXPECT_DOUBLE_EQ(h.quantile(1.0),
                     *std::max_element(samples.begin(),
                                       samples.end()));
}

TEST(Sketch, MergeEqualsPooledStream)
{
    // Splitting a stream into chunks and merging the chunk sketches:
    // all integer state (bin counts, totals, under/overflow) and the
    // exact min/max are identical to one pooled sketch for *any*
    // chunking; the double sum is regrouped so it only agrees to
    // rounding.  Bit-identical sums need a fixed fold order, which is
    // exactly what the campaign's fixed shard/epoch decomposition
    // provides -- checked by the repeat below and, end to end, by
    // tests/test_determinism.cc.
    Rng rng(23);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(rng.uniform() * 2.0 - 0.5);

    StreamingHistogram pooled = filled(0.0, 1.0, 32, samples);

    auto merge_chunks = [&] {
        StreamingHistogram merged; // shapeless: adopts on 1st merge.
        std::size_t at = 0;
        for (std::size_t chunk : {1000u, 1u, 2500u, 499u, 1000u}) {
            StreamingHistogram part(0.0, 1.0, 32);
            for (std::size_t i = 0; i < chunk; ++i)
                part.add(samples[at++]);
            merged.merge(part);
        }
        EXPECT_EQ(at, samples.size());
        return merged;
    };
    StreamingHistogram merged = merge_chunks();

    EXPECT_EQ(merged.count(), pooled.count());
    EXPECT_EQ(merged.underflow(), pooled.underflow());
    EXPECT_EQ(merged.overflow(), pooled.overflow());
    for (std::uint32_t b = 0; b < pooled.bins(); ++b)
        EXPECT_EQ(merged.binCount(b), pooled.binCount(b)) << b;
    EXPECT_EQ(merged.min(), pooled.min());
    EXPECT_EQ(merged.max(), pooled.max());
    EXPECT_NEAR(merged.sum(), pooled.sum(),
                1e-9 * std::abs(pooled.sum()));

    // The same decomposition replayed is bit-identical, hash and all.
    EXPECT_EQ(merge_chunks().hash(), merged.hash());
}

TEST(Sketch, MergeEmptyIsIdentity)
{
    StreamingHistogram h = filled(0.0, 1.0, 8, {0.25, 0.75});
    const std::uint64_t before = h.hash();
    h.merge(StreamingHistogram{});
    EXPECT_EQ(h.hash(), before);
    h.merge(StreamingHistogram(0.0, 1.0, 8));
    EXPECT_EQ(h.count(), 2u);
}

TEST(Sketch, SerializeRoundTripsBitIdentically)
{
    Rng rng(31);
    StreamingHistogram h(-2.0, 3.0, 17);
    for (int i = 0; i < 300; ++i)
        h.add(rng.uniform() * 6.0 - 3.0);

    std::vector<std::uint8_t> blob;
    h.serializeTo(blob);
    const std::uint8_t *cursor = blob.data();
    const std::uint8_t *end = blob.data() + blob.size();
    StreamingHistogram back =
        StreamingHistogram::deserializeFrom(&cursor, end);
    EXPECT_EQ(cursor, end);
    EXPECT_EQ(back.hash(), h.hash());
    EXPECT_EQ(back.bins(), h.bins());
    EXPECT_EQ(back.sum(), h.sum());
    EXPECT_EQ(back.min(), h.min());
    EXPECT_EQ(back.max(), h.max());
}

TEST(SketchDeathTest, BadInputsAreFatal)
{
    EXPECT_EXIT(StreamingHistogram(1.0, 1.0, 8),
                ::testing::ExitedWithCode(1), "degenerate");
    EXPECT_EXIT(StreamingHistogram(0.0, 1.0, 0),
                ::testing::ExitedWithCode(1), "bad bin count");

    EXPECT_EXIT(
        {
            StreamingHistogram h(0.0, 1.0, 8);
            h.add(std::nan(""));
        },
        ::testing::ExitedWithCode(1), "NaN");

    EXPECT_EXIT(
        {
            StreamingHistogram a(0.0, 1.0, 8);
            StreamingHistogram b(0.0, 1.0, 16);
            a.merge(b);
        },
        ::testing::ExitedWithCode(1), "mismatched shapes");
}

TEST(SketchDeathTest, TruncatedBlobIsFatal)
{
    StreamingHistogram h(0.0, 1.0, 4);
    h.add(0.5);
    std::vector<std::uint8_t> blob;
    h.serializeTo(blob);
    // Every proper prefix must be rejected, not silently zero-filled.
    for (std::size_t cut : {blob.size() - 1, blob.size() / 2,
                            std::size_t{5}}) {
        EXPECT_EXIT(
            {
                const std::uint8_t *cursor = blob.data();
                StreamingHistogram::deserializeFrom(&cursor,
                                                    blob.data() + cut);
            },
            ::testing::ExitedWithCode(1), "truncated blob")
            << "cut=" << cut;
    }
}

} // namespace
} // namespace arcc
