/**
 * @file
 * Property tests for the arccd cache key: the canonical request form
 * and its hash.
 *
 * The memoization contract has two directions.  Soundness: requests
 * that specify different simulations must never share a cache key
 * (else one sweep silently reads another's numbers).  Completeness:
 * every spelling of the *same* simulation must collapse to the same
 * key (else the cache never hits).  Both are fuzzed here from seeded
 * Rng streams, plus the end-to-end check that hash-equal requests
 * evaluate to byte-identical responses.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "cpu/workloads.hh"
#include "engine/sim_engine.hh"
#include "service/request.hh"
#include "service/sim_service.hh"

namespace arcc
{
namespace
{

const std::vector<std::string> kConfigs = {"baseline", "arcc",
                                           "arcc4", "arcc8"};
const std::vector<std::string> kFaults = {"none", "lane", "device",
                                          "bank", "column"};

/** Draw a random-but-valid mix request from an Rng stream. */
ServiceRequest
randomMixRequest(Rng &rng)
{
    ServiceRequest req;
    req.kind = ServiceRequestKind::Mix;
    req.config = kConfigs[rng.below(kConfigs.size())];
    req.mix = table73Mixes()[rng.below(table73Mixes().size())].name;
    req.instrs = 1 + rng.below(1'000'000);
    req.seed = rng.next();
    req.sectored = rng.below(2) == 1;
    if (rng.below(2) == 1) {
        req.fraction = static_cast<double>(rng.below(1001)) / 1000.0;
        req.fault = "none";
    } else {
        req.fault = kFaults[rng.below(kFaults.size())];
    }
    return req;
}

/** Draw a random-but-valid campaign request from an Rng stream. */
ServiceRequest
randomCampaignRequest(Rng &rng)
{
    ServiceRequest req;
    req.kind = ServiceRequestKind::Campaign;
    req.campaign.channels = 1 + rng.below(4096);
    req.campaign.years = 1.0 + static_cast<double>(rng.below(20));
    req.campaign.rateBoost =
        1.0 + static_cast<double>(rng.below(100000));
    req.campaign.seed = rng.next();
    req.campaign.scrubHours = 1.0 + static_cast<double>(rng.below(48));
    req.campaign.devicesPerGroup = (rng.below(2) == 1) ? 18 : 36;
    req.campaign.epochTrials = 1 + rng.below(1024);
    req.campaign.shardTrials =
        1 + rng.below(req.campaign.epochTrials);
    return req;
}

/** All single-field mutations of a mix request that change the sim. */
std::vector<ServiceRequest>
mixMutations(const ServiceRequest &base)
{
    std::vector<ServiceRequest> out;
    for (const std::string &c : kConfigs)
        if (c != base.config) {
            out.push_back(base);
            out.back().config = c;
        }
    for (const WorkloadMix &m : table73Mixes())
        if (m.name != base.mix) {
            out.push_back(base);
            out.back().mix = m.name;
        }
    if (base.fraction < 0.0) {
        for (const std::string &f : kFaults)
            if (f != base.fault) {
                out.push_back(base);
                out.back().fault = f;
            }
    }
    out.push_back(base);
    out.back().instrs = base.instrs + 1;
    out.push_back(base);
    out.back().seed = base.seed + 1;
    out.push_back(base);
    out.back().sectored = !base.sectored;
    return out;
}

/** Re-spell a canonical request line without changing its meaning:
 *  shuffle the key order and sprinkle whitespace. */
std::string
respell(const std::string &canonical, Rng &rng)
{
    // Split `{"k":v,...}` into its top-level `"k":v` fragments.  The
    // only commas/braces inside a value live in the trace "paths"
    // array, which this splitter tracks with a bracket depth count.
    std::vector<std::string> fields;
    int depth = 0;
    bool inString = false;
    std::string cur;
    for (std::size_t i = 1; i + 1 < canonical.size(); ++i) {
        const char ch = canonical[i];
        if (inString) {
            cur += ch;
            if (ch == '\\') {
                cur += canonical[++i];
            } else if (ch == '"') {
                inString = false;
            }
            continue;
        }
        if (ch == '"')
            inString = true;
        if (ch == '[')
            ++depth;
        if (ch == ']')
            --depth;
        if (ch == ',' && depth == 0) {
            fields.push_back(cur);
            cur.clear();
            continue;
        }
        cur += ch;
    }
    if (!cur.empty())
        fields.push_back(cur);

    for (std::size_t i = fields.size(); i > 1; --i)
        std::swap(fields[i - 1], fields[rng.below(i)]);

    std::string out = "{";
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out += ",";
        if (rng.below(2) == 1)
            out += " ";
        out += fields[i];
        if (rng.below(2) == 1)
            out += "  ";
    }
    out += "}";
    return out;
}

// --- soundness: different specs never collide ---------------------------

TEST(ServiceKeyProperty, MutatedRequestsNeverShareAKey)
{
    Rng rng(0x736f756e64ULL); // "sound"
    for (int round = 0; round < 40; ++round) {
        const ServiceRequest base = randomMixRequest(rng);
        const std::string baseCanon = base.canonical();
        const std::uint64_t baseHash = base.hash();
        for (const ServiceRequest &mut : mixMutations(base)) {
            EXPECT_NE(mut.canonical(), baseCanon)
                << "round " << round;
            EXPECT_NE(mut.hash(), baseHash)
                << baseCanon << " vs " << mut.canonical();
        }
    }
}

TEST(ServiceKeyProperty, CampaignMutationsNeverShareAKey)
{
    Rng rng(0x63616d70ULL); // "camp"
    for (int round = 0; round < 40; ++round) {
        const ServiceRequest base = randomCampaignRequest(rng);
        std::vector<ServiceRequest> muts;
        muts.push_back(base);
        muts.back().campaign.channels += 1;
        muts.push_back(base);
        muts.back().campaign.seed += 1;
        muts.push_back(base);
        muts.back().campaign.years += 0.5;
        muts.push_back(base);
        muts.back().campaign.rateBoost *= 2.0;
        muts.push_back(base);
        muts.back().campaign.epochTrials += 1;
        muts.back().campaign.shardTrials = 1;
        for (const ServiceRequest &mut : muts) {
            EXPECT_NE(mut.canonical(), base.canonical());
            EXPECT_NE(mut.hash(), base.hash());
        }
    }
}

TEST(ServiceKeyProperty, AFleetOfRandomRequestsIsCollisionFree)
{
    Rng rng(0x666c656574ULL); // "fleet"
    std::set<std::string> canons;
    std::set<std::uint64_t> hashes;
    for (int i = 0; i < 400; ++i) {
        const ServiceRequest req = (i % 4 == 3)
                                       ? randomCampaignRequest(rng)
                                       : randomMixRequest(rng);
        canons.insert(req.canonical());
        hashes.insert(req.hash());
    }
    // Distinct canonical forms => distinct hashes.  (Duplicate draws
    // collapse identically in both sets, so the sizes must agree.)
    EXPECT_EQ(canons.size(), hashes.size());
}

// --- completeness: spellings of one spec share the key ------------------

TEST(ServiceKeyProperty, RespelledRequestsShareTheKey)
{
    Rng rng(0x7370656cULL); // "spel"
    int parsed = 0;
    for (int round = 0; round < 60; ++round) {
        const ServiceRequest base = (round % 3 == 2)
                                        ? randomCampaignRequest(rng)
                                        : randomMixRequest(rng);
        const std::string canon = base.canonical();
        for (int variant = 0; variant < 4; ++variant) {
            const std::string line = respell(canon, rng);
            ServiceRequest req;
            std::string err;
            ASSERT_TRUE(ServiceRequest::parse(line, req, err))
                << line << ": " << err;
            EXPECT_EQ(req.canonical(), canon) << line;
            EXPECT_EQ(req.hash(), base.hash()) << line;
            ++parsed;
        }
    }
    EXPECT_EQ(parsed, 240);
}

// --- the end-to-end property: hash-equal => byte-equal ------------------

TEST(ServiceKeyProperty, HashEqualRequestsGetByteEqualResponses)
{
    SimEngine engine{SimEngine::Options{2}};
    SimService::Options opts;
    opts.engine = &engine;
    opts.workers = 1;

    Rng rng(0x62797465ULL); // "byte"
    for (int round = 0; round < 3; ++round) {
        ServiceRequest req = randomMixRequest(rng);
        req.instrs = 2000 + rng.below(2000); // keep the sims tiny.
        const std::string canon = req.canonical();

        // Two independent services (disjoint caches), fed different
        // spellings of the same request: the response bytes must
        // match anyway, because the body is a pure function of the
        // canonical form.
        SimService fresh(opts), other(opts);
        const ServiceResponse a = fresh.evaluate(canon);
        const ServiceResponse b =
            other.evaluate(respell(canon, rng));
        ASSERT_EQ(a.body.rfind("{\"ok\":true", 0), 0u) << a.body;
        EXPECT_EQ(a.body, b.body) << canon;
    }
}

} // namespace
} // namespace arcc
