/**
 * @file
 * Oracle equality fuzzing for the fast Reed-Solomon pipeline (ctest
 * label `property`).
 *
 * The table-driven, allocation-free decoder in ecc/reed_solomon.cc is
 * required to be *bit-identical* to the retained reference
 * implementation (ecc/rs_reference.cc) -- same status, same corrected
 * word, same reported positions -- under arbitrary error / erasure /
 * maxCorrect combinations, including patterns far beyond the
 * correction capability.  These tests fuzz that contract with >= 10k
 * words per codec shape; every case logs its seed with SCOPED_TRACE
 * so a failure reproduces from the message alone:
 *
 *     Rng rng(seed_from_the_failure_message);
 *
 * They also pin the rollback contract the scrubber relies on: a
 * Detected outcome must leave the word exactly as it was received.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/rs_reference.hh"

namespace arcc
{
namespace
{

constexpr std::uint64_t kBaseSeed = 0x0a2cc0feeu;

/** Per-iteration seed: pure function of the base seed and index. */
std::uint64_t
caseSeed(std::uint64_t iteration)
{
    return Rng::mix64(kBaseSeed ^ (iteration * 0x9e3779b97f4a7c15ULL));
}

struct RsShape
{
    int n, k;
};

const std::vector<RsShape> kShapes = {
    {18, 16}, // ARCC relaxed.
    {36, 32}, // ARCC upgraded / commercial SCCDCD.
    {72, 64}, // Chapter 5.1 level 2.
};

/** Distinct random positions; the first f become erasures. */
std::vector<int>
distinctPositions(Rng &rng, int n, int count)
{
    std::vector<int> pos;
    while (static_cast<int>(pos.size()) < count) {
        int p = static_cast<int>(rng.below(n));
        if (std::find(pos.begin(), pos.end(), p) == pos.end())
            pos.push_back(p);
    }
    return pos;
}

TEST(RsOracleProperty, FuzzedDecodesMatchReferenceBitForBit)
{
    // The acceptance contract: >= 10k fuzzed words per codec, error
    // weights sweeping from clean through far-beyond-capability, all
    // maxCorrect modes the schemes use, with and without erasures.
    for (const RsShape &shape : kShapes) {
        ReedSolomon fast(shape.n, shape.k);
        RsReference ref(shape.n, shape.k);
        RsWorkspace ws;
        const int rr = fast.r();

        for (std::uint64_t it = 0; it < 10000; ++it) {
            const std::uint64_t seed =
                caseSeed((static_cast<std::uint64_t>(shape.n) << 32) +
                         it);
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));

            // Encoders must agree symbol for symbol.
            std::vector<std::uint8_t> word_ref = word;
            fast.encode(word);
            ref.encode(word_ref);
            ASSERT_EQ(word, word_ref)
                << "encode mismatch, seed=" << seed;

            // 0 .. r+1 corruptions, a random split into erasures and
            // errors (erasure values are arbitrary garbage).
            const int weight = static_cast<int>(rng.below(rr + 2));
            const int f = weight == 0
                              ? 0
                              : static_cast<int>(rng.below(weight + 1));
            std::vector<int> pos = distinctPositions(rng, shape.n,
                                                     weight);
            std::vector<int> erasures(pos.begin(), pos.begin() + f);
            std::sort(erasures.begin(), erasures.end());
            for (int i = 0; i < f; ++i)
                word[pos[i]] = static_cast<std::uint8_t>(rng.below(256));
            for (int i = f; i < weight; ++i)
                word[pos[i]] ^=
                    static_cast<std::uint8_t>(rng.range(1, 255));

            // -1 = full capability, plus every per-scheme cap in use.
            const int max_correct =
                static_cast<int>(rng.below(4)) - 1;

            word_ref = word;
            const RsDecodeView v =
                fast.decode(word, ws, max_correct, erasures);
            const DecodeResult r =
                ref.decode(word_ref, max_correct, erasures);

            if (v.status != r.status || word != word_ref ||
                v.symbolsCorrected != r.symbolsCorrected ||
                !std::equal(v.positions.begin(), v.positions.end(),
                            r.positions.begin(), r.positions.end())) {
                FAIL() << "fast/reference divergence: n=" << shape.n
                       << " weight=" << weight << " f=" << f
                       << " maxCorrect=" << max_correct
                       << " seed=" << seed;
            }
        }
    }
}

TEST(RsOracleProperty, ExtendedSyndromeDecodesMatchReference)
{
    // The VECC path: decodeWithSyndromes with sequences *longer* than
    // r (virtualised tier-2 evaluations), fuzzed against the oracle.
    for (const RsShape &shape : kShapes) {
        ReedSolomon fast(shape.n, shape.k);
        RsReference ref(shape.n, shape.k);
        RsWorkspace ws;
        const int rr = fast.r();
        const int extra = 2; // tier-2 symbols.
        const int total = rr + extra;

        for (std::uint64_t it = 0; it < 2000; ++it) {
            const std::uint64_t seed =
                caseSeed(0x700000000ULL +
                         (static_cast<std::uint64_t>(shape.n) << 24) +
                         it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            fast.encode(word);

            // Stored tier-2 evaluations of the pristine word.
            std::vector<std::uint8_t> tier2(extra);
            for (int j = 0; j < extra; ++j)
                tier2[j] = fast.evalAt(word, rr + j);

            const int weight =
                static_cast<int>(rng.below(total / 2 + 2));
            for (int p : distinctPositions(rng, shape.n, weight))
                word[p] ^=
                    static_cast<std::uint8_t>(rng.range(1, 255));

            std::vector<std::uint8_t> synd(total);
            for (int j = 0; j < rr; ++j)
                synd[j] = fast.evalAt(word, j);
            for (int j = 0; j < extra; ++j)
                synd[rr + j] = GF256::add(fast.evalAt(word, rr + j),
                                          tier2[j]);

            std::vector<std::uint8_t> word_ref = word;
            const RsDecodeView v = fast.decodeWithSyndromes(
                word, synd, ws, total / 2);
            const DecodeResult r = ref.decodeWithSyndromes(
                word_ref, synd, total / 2);

            EXPECT_EQ(v.status, r.status);
            EXPECT_EQ(v.symbolsCorrected, r.symbolsCorrected);
            EXPECT_EQ(word, word_ref);
            EXPECT_TRUE(std::equal(v.positions.begin(),
                                   v.positions.end(),
                                   r.positions.begin(),
                                   r.positions.end()));
        }
    }
}

TEST(RsOracleProperty, ErrorsAndErasuresWithinCapabilityCorrect)
{
    // 2e + f <= r must always round-trip on the workspace fast path,
    // for every codec shape the schemes instantiate.
    for (const RsShape &shape : kShapes) {
        ReedSolomon rs(shape.n, shape.k);
        RsWorkspace ws;
        const int rr = rs.r();

        for (std::uint64_t it = 0; it < 3000; ++it) {
            const std::uint64_t seed =
                caseSeed(0x100000000ULL +
                         (static_cast<std::uint64_t>(shape.n) << 24) +
                         it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            rs.encode(word);
            const std::vector<std::uint8_t> original = word;

            const int f = static_cast<int>(rng.range(0, rr));
            const int e =
                static_cast<int>(rng.range(0, (rr - f) / 2));
            std::vector<int> pos =
                distinctPositions(rng, shape.n, e + f);
            std::vector<int> erasures(pos.begin(), pos.begin() + f);
            std::sort(erasures.begin(), erasures.end());
            for (int i = 0; i < f; ++i)
                word[pos[i]] =
                    static_cast<std::uint8_t>(rng.below(256));
            for (int i = f; i < e + f; ++i)
                word[pos[i]] ^=
                    static_cast<std::uint8_t>(rng.range(1, 255));

            const RsDecodeView v = rs.decode(word, ws, -1, erasures);
            EXPECT_TRUE(v.ok()) << "e=" << e << " f=" << f;
            EXPECT_EQ(word, original);
            // Reported positions must be exactly the symbols whose
            // received value differed from the codeword's.
            for (int p : v.positions)
                EXPECT_NE(std::find(pos.begin(), pos.end(), p),
                          pos.end());
        }
    }
}

TEST(RsOracleProperty, DetectedRestoresTheReceivedWordBitForBit)
{
    // The rollback contract: whenever the decoder (fast or reference)
    // answers Detected, the word must be byte-identical to what was
    // received -- the scrubber writes it back as-is, so a half-applied
    // correction would corrupt memory.
    for (const RsShape &shape : kShapes) {
        ReedSolomon fast(shape.n, shape.k);
        RsReference ref(shape.n, shape.k);
        RsWorkspace ws;
        const int rr = fast.r();
        int detected = 0;

        for (std::uint64_t it = 0; it < 3000; ++it) {
            const std::uint64_t seed =
                caseSeed(0x200000000ULL +
                         (static_cast<std::uint64_t>(shape.n) << 24) +
                         it);
            SCOPED_TRACE("n=" + std::to_string(shape.n) +
                         " seed=" + std::to_string(seed));
            Rng rng(seed);

            std::vector<std::uint8_t> word(shape.n);
            for (int i = 0; i < shape.k; ++i)
                word[i] = static_cast<std::uint8_t>(rng.below(256));
            fast.encode(word);

            // Beyond capability: t+1 .. r+2 errors.
            const int e = static_cast<int>(
                rng.range(rr / 2 + 1, rr + 2));
            for (int p : distinctPositions(rng, shape.n, e))
                word[p] ^=
                    static_cast<std::uint8_t>(rng.range(1, 255));
            const std::vector<std::uint8_t> received = word;

            const int max_correct = static_cast<int>(rng.below(2))
                                        ? -1
                                        : 1;
            const RsDecodeView v =
                fast.decode(word, ws, max_correct);
            if (v.status == DecodeStatus::Detected) {
                ++detected;
                EXPECT_EQ(word, received)
                    << "DUE must not half-correct";
                EXPECT_EQ(v.symbolsCorrected, 0);
                EXPECT_TRUE(v.positions.empty());
            }

            std::vector<std::uint8_t> word_ref = received;
            const DecodeResult r =
                ref.decode(word_ref, max_correct);
            if (r.status == DecodeStatus::Detected) {
                EXPECT_EQ(word_ref, received);
            }
            EXPECT_EQ(v.status, r.status);
            EXPECT_EQ(word, word_ref);
        }
        EXPECT_GT(detected, 2000)
            << "beyond-capability patterns should mostly flag DUEs";
    }
}

} // namespace
} // namespace arcc
