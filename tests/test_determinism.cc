/**
 * @file
 * Determinism proofs for every parallel kernel (ctest label
 * `determinism`): golden values plus N-thread-vs-1-thread equality
 * for the SDC-event Monte Carlo, the sharded scrubber, and the mix
 * simulation batch.
 *
 * Two kinds of test:
 *
 *  - engine-pinned: run the same kernel on engines of 1, 2 and 7
 *    executors and require bit-identical results;
 *  - golden: run through SimEngine::global() -- whose size comes from
 *    ARCC_THREADS -- and compare against hardcoded values.  CI runs
 *    this label at ARCC_THREADS=1 and 4, so a kernel whose result
 *    drifts with the thread count fails there even if it is
 *    self-consistent within one process.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <vector>

#include "arcc/scrubber.hh"
#include "campaign/campaign.hh"
#include "common/rng.hh"
#include "cpu/system_sim.hh"
#include "cpu/trace.hh"
#include "dram/channel_shard.hh"
#include "dram/dram_params.hh"
#include "engine/sim_engine.hh"
#include "faults/fault_matrix.hh"
#include "reliability/sdc_model.hh"

namespace arcc
{
namespace
{

/** The thread counts every equality test sweeps. */
const std::vector<int> kThreadCounts = {1, 2, 7};

// --- SDC-event Monte Carlo ---------------------------------------------

McSdcResult
runMc(SimEngine *engine)
{
    SdcModel model(SdcModelConfig::arccMachine());
    return model.mcArccSdcEventsDetailed(7.0, 2000.0, 300, 99, engine);
}

void
expectEqual(const McSdcResult &a, const McSdcResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.faultsSampled, b.faultsSampled);
    EXPECT_EQ(a.eventHistogram, b.eventHistogram);
}

TEST(McSdcDeterminism, BitIdenticalAcrossThreadCounts)
{
    SimEngine ref(SimEngine::Options{1});
    McSdcResult serial = runMc(&ref);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        expectEqual(runMc(&engine), serial);
    }
}

TEST(McSdcDeterminism, GoldenValuesOnTheGlobalEngine)
{
    // Golden counters for (years=7, boost=2000, trials=300, seed=99).
    // The global engine's size comes from ARCC_THREADS: CI runs this
    // at 1 and 4 threads and both must reproduce these numbers.
    McSdcResult r = runMc(nullptr);
    EXPECT_EQ(r.trials, 300u);
    EXPECT_EQ(r.events, 78u);
    EXPECT_EQ(r.faultsSampled, 151545u);
    std::array<std::uint64_t, McSdcResult::kHistogramBins> hist{
        232, 61, 4, 3, 0, 0, 0, 0};
    EXPECT_EQ(r.eventHistogram, hist);
    EXPECT_DOUBLE_EQ(r.eventsPerTrial(), 78.0 / 300.0);
}

TEST(McSdcDeterminism, ScalarEntryPointMatchesDetailed)
{
    SimEngine engine(SimEngine::Options{2});
    SdcModel model(SdcModelConfig::arccMachine());
    double scalar =
        model.mcArccSdcEvents(7.0, 2000.0, 300, 99, &engine);
    EXPECT_DOUBLE_EQ(scalar, runMc(&engine).eventsPerTrial());
}

// --- codec-zoo fault-injection matrix ----------------------------------

/** One RS, one SECDED, one BCH codec: every injection granularity. */
FaultMatrixConfig
faultMatrixConfig()
{
    FaultMatrixConfig cfg;
    cfg.codecs = {"arcc-relaxed", "hsiao72", "bch512-t2"};
    cfg.trialsPerCell = 96;
    cfg.exhaustiveLimit = 640;
    cfg.seed = 20130223;
    return cfg;
}

TEST(FaultMatrixDeterminism, BitIdenticalAcrossThreadCounts)
{
    SimEngine ref_engine(SimEngine::Options{1});
    FaultMatrixResult ref =
        runFaultMatrix(faultMatrixConfig(), &ref_engine);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        FaultMatrixResult r =
            runFaultMatrix(faultMatrixConfig(), &engine);
        ASSERT_EQ(r.cells.size(), ref.cells.size());
        for (std::size_t i = 0; i < ref.cells.size(); ++i) {
            SCOPED_TRACE(ref.cells[i].codec + "/" +
                         toString(ref.cells[i].mode) + "/" +
                         std::to_string(ref.cells[i].errors));
            EXPECT_EQ(r.cells[i].trials, ref.cells[i].trials);
            EXPECT_EQ(r.cells[i].clean, ref.cells[i].clean);
            EXPECT_EQ(r.cells[i].corrected, ref.cells[i].corrected);
            EXPECT_EQ(r.cells[i].miscorrected,
                      ref.cells[i].miscorrected);
            EXPECT_EQ(r.cells[i].due, ref.cells[i].due);
            EXPECT_EQ(r.cells[i].sdc, ref.cells[i].sdc);
        }
        EXPECT_EQ(r.hash(), ref.hash());
    }
}

TEST(FaultMatrixDeterminism, GoldenHashOnTheGlobalEngine)
{
    // Golden digest of the whole (codec x mode x error-count) table
    // for faultMatrixConfig(), via the ARCC_THREADS-sized global
    // engine: CI runs this at 1 and 4 threads and both must reproduce
    // it bit-for-bit.  Any change to a codec, the injection plan, or
    // the Rng stream layout lands here first.
    FaultMatrixResult r = runFaultMatrix(faultMatrixConfig());
    EXPECT_EQ(r.cells.size(), 23u);
    EXPECT_EQ(r.hash(), 0xfcad756f62442c10ULL);
}

// --- sharded scrubber --------------------------------------------------

/** A 512KB ARCC memory with pseudo-random content, one corrupt
 *  device, and one stuck-at-1 row: every scrub step has work. */
ArccMemory
scrubFixture()
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(2026);
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
    }

    FunctionalFault dead;
    dead.channel = 0;
    dead.rank = 1;
    dead.device = 6;
    dead.scope = FaultScope::Device;
    dead.kind = FaultKind::Corrupt;
    mem.injectFault(dead);

    FunctionalFault stuck;
    stuck.channel = 1;
    stuck.rank = 0;
    stuck.device = 2;
    stuck.scope = FaultScope::Row;
    stuck.bank = 0;
    stuck.row = 3;
    stuck.kind = FaultKind::StuckAt1;
    mem.injectFault(stuck);
    return mem;
}

TEST(ScrubDeterminism, ParallelReportsMatchSerialAtEveryThreadCount)
{
    Scrubber scrubber;

    ArccMemory ref = scrubFixture();
    ScrubReport boot_ref = scrubber.bootScrub(ref);
    ScrubReport scrub_ref = scrubber.scrub(ref);

    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        ArccMemory mem = scrubFixture();

        EXPECT_EQ(scrubber.bootScrubParallel(mem, &engine), boot_ref);
        EXPECT_EQ(scrubber.scrubParallel(mem, &engine), scrub_ref);

        // End state matches too: page modes and (batched-granularity)
        // stats are pure functions of the configuration.
        EXPECT_EQ(mem.pageTable().count(PageMode::Relaxed),
                  ref.pageTable().count(PageMode::Relaxed));
        EXPECT_EQ(mem.pageTable().count(PageMode::Upgraded),
                  ref.pageTable().count(PageMode::Upgraded));
        EXPECT_EQ(mem.stats().deviceReads, ref.stats().deviceReads);
        EXPECT_EQ(mem.stats().corrected, ref.stats().corrected);
        EXPECT_EQ(mem.stats().dues, ref.stats().dues);
    }
}

TEST(ScrubDeterminism, GoldenReportOnTheGlobalEngine)
{
    // Golden counters for scrubFixture() after a boot scrub, via the
    // ARCC_THREADS-sized global engine.
    Scrubber scrubber;
    ArccMemory mem = scrubFixture();
    scrubber.bootScrubParallel(mem);
    ScrubReport r = scrubber.scrubParallel(mem);

    EXPECT_EQ(r.linesScrubbed, 6080u);
    EXPECT_EQ(r.errorsCorrected, 8418u);
    EXPECT_EQ(r.duesFound, 0u);
    EXPECT_EQ(r.stuckAt1Found, 2112u);
    EXPECT_EQ(r.stuckAt0Found, 2048u);
    EXPECT_EQ(r.faultyPages.size(), 66u);
    EXPECT_EQ(r.pagesUpgraded, 0u); // boot already upgraded them.
    EXPECT_EQ(r.pagesRelaxed, 0u);
}

TEST(ScrubDeterminism, ParallelScrubHealsAndUpgradesLikeSerial)
{
    // Functional outcome, not just counters: data survives and the
    // faulty rank's pages end up upgraded.
    SimEngine engine(SimEngine::Options{7});
    ArccMemory mem = scrubFixture();
    Scrubber scrubber;
    scrubber.bootScrubParallel(mem, &engine);

    EXPECT_NEAR(mem.pageTable().upgradedFraction(), 0.5, 0.05);
    for (std::uint64_t addr : {std::uint64_t{0}, kPageBytes * 100}) {
        ReadResult r = mem.read(addr);
        EXPECT_NE(r.status, DecodeStatus::Detected);
    }
}

// --- mix simulation batch ----------------------------------------------

std::vector<MixJob>
mixJobs()
{
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 20000; // keep the test quick.
    cfg.seed = 20130223;

    std::vector<MixJob> jobs;
    jobs.push_back({table73Mixes()[0], cfg, {}});
    jobs.push_back({table73Mixes()[1], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Lane, cfg.mem)});
    jobs.push_back({table73Mixes()[2], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Bank, cfg.mem)});
    jobs.push_back({table73Mixes()[3], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Column, cfg.mem)});
    return jobs;
}

TEST(MixBatchDeterminism, BitIdenticalAcrossThreadCounts)
{
    std::vector<MixJob> jobs = mixJobs();
    SimEngine ref_engine(SimEngine::Options{1});
    std::vector<SimResult> ref = simulateMixBatch(jobs, &ref_engine);
    ASSERT_EQ(ref.size(), jobs.size());

    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        std::vector<SimResult> out = simulateMixBatch(jobs, &engine);
        ASSERT_EQ(out.size(), ref.size());
        for (std::size_t j = 0; j < ref.size(); ++j) {
            SCOPED_TRACE("job " + std::to_string(j));
            EXPECT_EQ(out[j].ipcSum, ref[j].ipcSum);
            EXPECT_EQ(out[j].avgPowerMw, ref[j].avgPowerMw);
            EXPECT_EQ(out[j].elapsedNs, ref[j].elapsedNs);
            EXPECT_EQ(out[j].memReads, ref[j].memReads);
            EXPECT_EQ(out[j].memWrites, ref[j].memWrites);
            EXPECT_EQ(out[j].llcStats.misses, ref[j].llcStats.misses);
        }
    }
}

// --- channel-sharded system simulator ----------------------------------

/** Exact (bit-identical) equality of two whole-run outcomes. */
void
expectEqual(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.ipcSum, b.ipcSum);
    EXPECT_EQ(a.elapsedNs, b.elapsedNs);
    EXPECT_EQ(a.avgPowerMw, b.avgPowerMw);
    EXPECT_EQ(a.power.dynamicNj, b.power.dynamicNj);
    EXPECT_EQ(a.power.backgroundNj, b.power.backgroundNj);
    EXPECT_EQ(a.power.refreshNj, b.power.refreshNj);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWrites, b.memWrites);
    EXPECT_EQ(a.scrubReads, b.scrubReads);
    EXPECT_EQ(a.scrubWrites, b.scrubWrites);
    EXPECT_EQ(a.llcStats.misses, b.llcStats.misses);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].benchmark, b.cores[i].benchmark);
        EXPECT_EQ(a.cores[i].ipc, b.cores[i].ipc);
        EXPECT_EQ(a.cores[i].instrs, b.cores[i].instrs);
        EXPECT_EQ(a.cores[i].llcAccesses, b.cores[i].llcAccesses);
        EXPECT_EQ(a.cores[i].llcMisses, b.cores[i].llcMisses);
    }
}

/**
 * One simulateMix run through the channel-sharded back-end: an
 * upgraded-page scenario so paired traffic exercises the lockstep
 * path, optionally with background scrubbing interleaved (period
 * compressed so many sweep visits land inside the short run).
 */
SimResult
runStreamSim(SimEngine *engine, bool scrub)
{
    SystemConfig cfg;
    cfg.mem = arccConfig();
    // Mix9 at this budget produces dirty writebacks too, so the
    // writeback emission path is inside the determinism contract.
    cfg.instrsPerCore = 150000;
    cfg.seed = 20130223;
    if (scrub) {
        cfg.backgroundScrub.enabled = true;
        cfg.backgroundScrub.periodHours = 0.01;
    }
    auto oracle = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Device, cfg.mem);
    return simulateMix(table73Mixes()[8], cfg, oracle, engine);
}

TEST(StreamSimDeterminism, BitIdenticalAcrossThreadCounts)
{
    for (bool scrub : {false, true}) {
        SCOPED_TRACE(scrub ? "background scrub" : "traffic only");
        SimEngine ref_engine(SimEngine::Options{1});
        SimResult ref = runStreamSim(&ref_engine, scrub);
        for (int threads : kThreadCounts) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            SimEngine engine(SimEngine::Options{threads});
            expectEqual(runStreamSim(&engine, scrub), ref);
        }
    }
}

TEST(StreamSimDeterminism, GoldenCountersOnTheGlobalEngine)
{
    // Golden counters for runStreamSim through the
    // ARCC_THREADS-sized global engine: CI runs this at 1 and 4
    // threads and both must reproduce these numbers.  The counters
    // are integers (exact at any thread count by the shard-reduce
    // contract); ipcSum is checked as a band so the golden stays
    // robust to FP-contraction differences across toolchains.
    SimResult r = runStreamSim(nullptr, /*scrub=*/true);
    EXPECT_EQ(r.memReads, 12463u);
    EXPECT_EQ(r.memWrites, 67u);
    EXPECT_EQ(r.llcStats.misses, 8635u);
    EXPECT_EQ(r.scrubReads, 1620u);
    EXPECT_EQ(r.scrubWrites, 1620u);
    EXPECT_NEAR(r.ipcSum, 1.4397, 0.05);
}

TEST(StreamSimDeterminism, ScrubPerturbationIsDeterministicToo)
{
    // The scrub-vs-clean IPC delta itself must be reproducible: the
    // two runs differ only in injected scrub traffic, so the delta is
    // a pure function of the configuration at any thread count.
    SimEngine a(SimEngine::Options{2});
    SimEngine b(SimEngine::Options{7});
    double delta_a = runStreamSim(&a, false).ipcSum -
                     runStreamSim(&a, true).ipcSum;
    double delta_b = runStreamSim(&b, false).ipcSum -
                     runStreamSim(&b, true).ipcSum;
    EXPECT_EQ(delta_a, delta_b);
    EXPECT_NE(delta_a, 0.0) << "scrub traffic must perturb the IPC";
    // (The *direction* of the perturbation under heavier scrub load
    // is asserted with margin in test_system_sim.cc; near-threshold
    // deltas may sit inside the latency fixed point's tolerance.)
}

// --- trace-driven simulateStreams at 4 and 8 channels -------------------

/** RAII deleter for the captured per-core trace files. */
struct TempFiles
{
    ~TempFiles()
    {
        for (const std::string &path : paths)
            std::remove(path.c_str());
    }
    std::vector<std::string> paths;
};

/**
 * The trace-driven multi-channel fixture: capture the Mix9 streams
 * once into binary trace files (pure function of the seed), then
 * replay them through simulateStreams on an `channels`-wide ARCC
 * configuration.  At 4 channels a Device-fault oracle keeps paired
 * traffic in play (2 pairable shard groups); at 8 channels the clean
 * oracle shards per channel -- the widest fan in the tree (8 shards).
 */
SystemConfig
traceSimConfig(int channels)
{
    SystemConfig cfg;
    cfg.mem = withChannels(arccConfig(), channels);
    cfg.instrsPerCore = 100000;
    cfg.seed = 20130223;
    return cfg;
}

void
captureTraceFiles(const SystemConfig &cfg, const WorkloadMix &mix,
                  TempFiles &files)
{
    AddressMap map(cfg.mem, cfg.mapPolicy);
    for (int i = 0; i < cfg.cores; ++i) {
        files.paths.push_back(
            (std::filesystem::temp_directory_path() /
             ("arcc_test_determinism." + std::to_string(::getpid()) +
              "." + std::to_string(i) + ".bin"))
                .string());
        captureSyntheticTrace(mix.benchmarks[i], map.capacity(), i,
                              mixCoreSeed(cfg.seed, i),
                              cfg.instrsPerCore, files.paths.back());
    }
}

SimResult
runTraceSim(SimEngine *engine, const SystemConfig &cfg,
            const WorkloadMix &mix, const TempFiles &files)
{
    std::vector<StreamSpec> streams;
    for (int i = 0; i < cfg.cores; ++i)
        streams.push_back(traceStreamSpec(
            files.paths[i],
            benchmarkProfile(mix.benchmarks[i]).baseIpc,
            /*chunkRecords=*/512));
    PageUpgradeOracle oracle;
    if (cfg.mem.channels == 4)
        oracle = PageUpgradeOracle::forScenario(
            PageUpgradeOracle::Scenario::Device, cfg.mem);
    return simulateStreams(std::move(streams), cfg, oracle, engine);
}

class TraceSimDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(TraceSimDeterminism, BitIdenticalAcrossThreadCounts)
{
    const int channels = GetParam();
    SystemConfig cfg = traceSimConfig(channels);
    const WorkloadMix &mix = table73Mixes()[8];
    TempFiles files;
    captureTraceFiles(cfg, mix, files);

    // The shard fan this run exercises: one shard per pairable group
    // at 4 channels, one per channel at 8.
    AddressMap map(cfg.mem, cfg.mapPolicy);
    ChannelShardPlan plan(map, /*pairable=*/channels == 4);
    EXPECT_EQ(plan.groups(),
              channels == 4 ? 2u : 8u);

    SimEngine ref_engine(SimEngine::Options{1});
    SimResult ref = runTraceSim(&ref_engine, cfg, mix, files);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        expectEqual(runTraceSim(&engine, cfg, mix, files), ref);
    }
    // Each captured trace covers the budget exactly: one lap.
    for (const CoreResult &core : ref.cores)
        EXPECT_EQ(core.traceLaps, 1u);
}

INSTANTIATE_TEST_SUITE_P(FourAndEightChannels, TraceSimDeterminism,
                         ::testing::Values(4, 8),
                         [](const ::testing::TestParamInfo<int> &info) {
                             return std::to_string(info.param) +
                                    "ch";
                         });

TEST(TraceSimDeterminism8Ch, GoldenCountersOnTheGlobalEngine)
{
    // Golden counters for the 8-channel trace replay through the
    // ARCC_THREADS-sized global engine: CI runs this at 1 and 4
    // threads and both must reproduce these numbers.  Integer
    // counters are exact by the shard-reduce contract; ipcSum is a
    // band (FP contraction varies across toolchains).
    SystemConfig cfg = traceSimConfig(8);
    const WorkloadMix &mix = table73Mixes()[8];
    TempFiles files;
    captureTraceFiles(cfg, mix, files);
    SimResult r = runTraceSim(nullptr, cfg, mix, files);

    EXPECT_EQ(r.memReads, 6471u);
    EXPECT_EQ(r.memWrites, 0u);
    EXPECT_EQ(r.llcStats.misses, 6471u);
    EXPECT_NEAR(r.ipcSum, 1.6158, 0.05);
}

TEST(TraceSimDeterminism4Ch, GoldenCountersOnTheGlobalEngine)
{
    // As above at 4 channels with the Device-fault oracle: paired
    // traffic crosses the {2k, 2k+1} shard groups.
    SystemConfig cfg = traceSimConfig(4);
    const WorkloadMix &mix = table73Mixes()[8];
    TempFiles files;
    captureTraceFiles(cfg, mix, files);
    SimResult r = runTraceSim(nullptr, cfg, mix, files);

    // memReads > llcMisses: the Device oracle upgrades half the
    // pages, and each upgraded miss fetches both 64B sub-lines.
    EXPECT_EQ(r.memReads, 8388u);
    EXPECT_EQ(r.memWrites, 2u);
    EXPECT_EQ(r.llcStats.misses, 5788u);
    EXPECT_NEAR(r.ipcSum, 1.6737, 0.05);
}

// --- fleet-scale campaign driver ---------------------------------------

/**
 * A fleet small enough for a sub-second test but wide enough that the
 * 7-executor engine gets several shards per epoch (2048 trials / 64
 * per shard = 32 shards across 8 epochs).
 */
CampaignSpec
campaignSpec()
{
    CampaignSpec spec;
    spec.channels = 2048;
    spec.epochTrials = 256;
    spec.shardTrials = 64;
    spec.seed = 20130223;
    return spec;
}

void
expectEqual(const CampaignAggregate &a, const CampaignAggregate &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.faultsSampled, b.faultsSampled);
    EXPECT_EQ(a.trialsWithFault, b.trialsWithFault);
    EXPECT_EQ(a.sdcCandidates, b.sdcCandidates);
    EXPECT_EQ(a.dueCandidates, b.dueCandidates);
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(CampaignDeterminism, BitIdenticalAcrossThreadCounts)
{
    const CampaignSpec spec = campaignSpec();
    SimEngine ref(SimEngine::Options{1});
    CampaignRunResult serial = CampaignDriver(spec, &ref).run();
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        CampaignRunResult r = CampaignDriver(spec, &engine).run();
        expectEqual(r.aggregate, serial.aggregate);
        EXPECT_EQ(r.digest(spec), serial.digest(spec));
    }
}

TEST(CampaignDeterminism, GoldenDigestOnTheGlobalEngine)
{
    // Golden campaign digest for the campaignSpec() fleet.  The
    // global engine's size comes from ARCC_THREADS: CI runs this at
    // 1 and 4 threads and both must reproduce the digest bit for bit.
    const CampaignSpec spec = campaignSpec();
    CampaignRunResult r = CampaignDriver(spec).run();
    EXPECT_EQ(r.aggregate.trials, 2048u);
    EXPECT_EQ(r.digest(spec), 0xa0c045902c858d77ULL);
}

TEST(CampaignDeterminism, ResumeSplitsAreBitIdenticalAcrossThreads)
{
    // Interrupt after 3 epochs on one engine, resume on an engine of
    // every sweep width: the stitched digest must equal the
    // uninterrupted one regardless of which widths ran which half.
    const CampaignSpec spec = campaignSpec();
    SimEngine ref(SimEngine::Options{1});
    const std::uint64_t golden =
        CampaignDriver(spec, &ref).run().digest(spec);

    for (int threads : kThreadCounts) {
        SCOPED_TRACE("resume threads=" + std::to_string(threads));
        std::string path =
            "determinism_campaign_" + std::to_string(threads) +
            "_" + std::to_string(::getpid()) + ".ckpt";
        TempFiles cleanup;
        cleanup.paths.push_back(path);

        CampaignRunOptions first;
        first.checkpointPath = path;
        first.maxEpochs = 3;
        CampaignRunResult head = CampaignDriver(spec, &ref).run(first);
        EXPECT_TRUE(head.interrupted);

        SimEngine engine(SimEngine::Options{threads});
        CampaignRunOptions rest;
        rest.checkpointPath = path;
        CampaignRunResult r = CampaignDriver(spec, &engine).run(rest);
        EXPECT_EQ(r.resumedFromTrial, 3u * spec.epochTrials);
        EXPECT_FALSE(r.interrupted);
        EXPECT_EQ(r.digest(spec), golden);
    }
}

TEST(MixBatchDeterminism, GlobalEngineMatchesSequentialReference)
{
    // Through the ARCC_THREADS-sized global engine (the path CI pins
    // to 1 and 4 threads): the batch must equal per-job simulateMix.
    std::vector<MixJob> jobs = mixJobs();
    std::vector<SimResult> batch = simulateMixBatch(jobs);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        SCOPED_TRACE("job " + std::to_string(j));
        SimResult ref =
            simulateMix(jobs[j].mix, jobs[j].config, jobs[j].oracle);
        EXPECT_EQ(batch[j].ipcSum, ref.ipcSum);
        EXPECT_EQ(batch[j].memReads, ref.memReads);
        EXPECT_EQ(batch[j].memWrites, ref.memWrites);
    }
}

} // namespace
} // namespace arcc
