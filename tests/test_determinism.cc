/**
 * @file
 * Determinism proofs for every parallel kernel (ctest label
 * `determinism`): golden values plus N-thread-vs-1-thread equality
 * for the SDC-event Monte Carlo, the sharded scrubber, and the mix
 * simulation batch.
 *
 * Two kinds of test:
 *
 *  - engine-pinned: run the same kernel on engines of 1, 2 and 7
 *    executors and require bit-identical results;
 *  - golden: run through SimEngine::global() -- whose size comes from
 *    ARCC_THREADS -- and compare against hardcoded values.  CI runs
 *    this label at ARCC_THREADS=1 and 4, so a kernel whose result
 *    drifts with the thread count fails there even if it is
 *    self-consistent within one process.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "arcc/scrubber.hh"
#include "common/rng.hh"
#include "cpu/system_sim.hh"
#include "dram/dram_params.hh"
#include "engine/sim_engine.hh"
#include "reliability/sdc_model.hh"

namespace arcc
{
namespace
{

/** The thread counts every equality test sweeps. */
const std::vector<int> kThreadCounts = {1, 2, 7};

// --- SDC-event Monte Carlo ---------------------------------------------

McSdcResult
runMc(SimEngine *engine)
{
    SdcModel model(SdcModelConfig::arccMachine());
    return model.mcArccSdcEventsDetailed(7.0, 2000.0, 300, 99, engine);
}

void
expectEqual(const McSdcResult &a, const McSdcResult &b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.faultsSampled, b.faultsSampled);
    EXPECT_EQ(a.eventHistogram, b.eventHistogram);
}

TEST(McSdcDeterminism, BitIdenticalAcrossThreadCounts)
{
    SimEngine ref(SimEngine::Options{1});
    McSdcResult serial = runMc(&ref);
    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        expectEqual(runMc(&engine), serial);
    }
}

TEST(McSdcDeterminism, GoldenValuesOnTheGlobalEngine)
{
    // Golden counters for (years=7, boost=2000, trials=300, seed=99).
    // The global engine's size comes from ARCC_THREADS: CI runs this
    // at 1 and 4 threads and both must reproduce these numbers.
    McSdcResult r = runMc(nullptr);
    EXPECT_EQ(r.trials, 300u);
    EXPECT_EQ(r.events, 78u);
    EXPECT_EQ(r.faultsSampled, 151545u);
    std::array<std::uint64_t, McSdcResult::kHistogramBins> hist{
        232, 61, 4, 3, 0, 0, 0, 0};
    EXPECT_EQ(r.eventHistogram, hist);
    EXPECT_DOUBLE_EQ(r.eventsPerTrial(), 78.0 / 300.0);
}

TEST(McSdcDeterminism, ScalarEntryPointMatchesDetailed)
{
    SimEngine engine(SimEngine::Options{2});
    SdcModel model(SdcModelConfig::arccMachine());
    double scalar =
        model.mcArccSdcEvents(7.0, 2000.0, 300, 99, &engine);
    EXPECT_DOUBLE_EQ(scalar, runMc(&engine).eventsPerTrial());
}

// --- sharded scrubber --------------------------------------------------

/** A 512KB ARCC memory with pseudo-random content, one corrupt
 *  device, and one stuck-at-1 row: every scrub step has work. */
ArccMemory
scrubFixture()
{
    ArccMemory mem(FunctionalConfig::arccSmall());
    Rng rng(2026);
    for (std::uint64_t addr = 0; addr < mem.capacity();
         addr += kLineBytes) {
        std::vector<std::uint8_t> line(kLineBytes);
        for (auto &b : line)
            b = static_cast<std::uint8_t>(rng.below(256));
        mem.write(addr, line);
    }

    FunctionalFault dead;
    dead.channel = 0;
    dead.rank = 1;
    dead.device = 6;
    dead.scope = FaultScope::Device;
    dead.kind = FaultKind::Corrupt;
    mem.injectFault(dead);

    FunctionalFault stuck;
    stuck.channel = 1;
    stuck.rank = 0;
    stuck.device = 2;
    stuck.scope = FaultScope::Row;
    stuck.bank = 0;
    stuck.row = 3;
    stuck.kind = FaultKind::StuckAt1;
    mem.injectFault(stuck);
    return mem;
}

TEST(ScrubDeterminism, ParallelReportsMatchSerialAtEveryThreadCount)
{
    Scrubber scrubber;

    ArccMemory ref = scrubFixture();
    ScrubReport boot_ref = scrubber.bootScrub(ref);
    ScrubReport scrub_ref = scrubber.scrub(ref);

    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        ArccMemory mem = scrubFixture();

        EXPECT_EQ(scrubber.bootScrubParallel(mem, &engine), boot_ref);
        EXPECT_EQ(scrubber.scrubParallel(mem, &engine), scrub_ref);

        // End state matches too: page modes and (batched-granularity)
        // stats are pure functions of the configuration.
        EXPECT_EQ(mem.pageTable().count(PageMode::Relaxed),
                  ref.pageTable().count(PageMode::Relaxed));
        EXPECT_EQ(mem.pageTable().count(PageMode::Upgraded),
                  ref.pageTable().count(PageMode::Upgraded));
        EXPECT_EQ(mem.stats().deviceReads, ref.stats().deviceReads);
        EXPECT_EQ(mem.stats().corrected, ref.stats().corrected);
        EXPECT_EQ(mem.stats().dues, ref.stats().dues);
    }
}

TEST(ScrubDeterminism, GoldenReportOnTheGlobalEngine)
{
    // Golden counters for scrubFixture() after a boot scrub, via the
    // ARCC_THREADS-sized global engine.
    Scrubber scrubber;
    ArccMemory mem = scrubFixture();
    scrubber.bootScrubParallel(mem);
    ScrubReport r = scrubber.scrubParallel(mem);

    EXPECT_EQ(r.linesScrubbed, 6080u);
    EXPECT_EQ(r.errorsCorrected, 8418u);
    EXPECT_EQ(r.duesFound, 0u);
    EXPECT_EQ(r.stuckAt1Found, 2112u);
    EXPECT_EQ(r.stuckAt0Found, 2048u);
    EXPECT_EQ(r.faultyPages.size(), 66u);
    EXPECT_EQ(r.pagesUpgraded, 0u); // boot already upgraded them.
    EXPECT_EQ(r.pagesRelaxed, 0u);
}

TEST(ScrubDeterminism, ParallelScrubHealsAndUpgradesLikeSerial)
{
    // Functional outcome, not just counters: data survives and the
    // faulty rank's pages end up upgraded.
    SimEngine engine(SimEngine::Options{7});
    ArccMemory mem = scrubFixture();
    Scrubber scrubber;
    scrubber.bootScrubParallel(mem, &engine);

    EXPECT_NEAR(mem.pageTable().upgradedFraction(), 0.5, 0.05);
    for (std::uint64_t addr : {std::uint64_t{0}, kPageBytes * 100}) {
        ReadResult r = mem.read(addr);
        EXPECT_NE(r.status, DecodeStatus::Detected);
    }
}

// --- mix simulation batch ----------------------------------------------

std::vector<MixJob>
mixJobs()
{
    SystemConfig cfg;
    cfg.mem = arccConfig();
    cfg.instrsPerCore = 20000; // keep the test quick.
    cfg.seed = 20130223;

    std::vector<MixJob> jobs;
    jobs.push_back({table73Mixes()[0], cfg, {}});
    jobs.push_back({table73Mixes()[1], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Lane, cfg.mem)});
    jobs.push_back({table73Mixes()[2], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Bank, cfg.mem)});
    jobs.push_back({table73Mixes()[3], cfg,
                    PageUpgradeOracle::forScenario(
                        PageUpgradeOracle::Scenario::Column, cfg.mem)});
    return jobs;
}

TEST(MixBatchDeterminism, BitIdenticalAcrossThreadCounts)
{
    std::vector<MixJob> jobs = mixJobs();
    SimEngine ref_engine(SimEngine::Options{1});
    std::vector<SimResult> ref = simulateMixBatch(jobs, &ref_engine);
    ASSERT_EQ(ref.size(), jobs.size());

    for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        SimEngine engine(SimEngine::Options{threads});
        std::vector<SimResult> out = simulateMixBatch(jobs, &engine);
        ASSERT_EQ(out.size(), ref.size());
        for (std::size_t j = 0; j < ref.size(); ++j) {
            SCOPED_TRACE("job " + std::to_string(j));
            EXPECT_EQ(out[j].ipcSum, ref[j].ipcSum);
            EXPECT_EQ(out[j].avgPowerMw, ref[j].avgPowerMw);
            EXPECT_EQ(out[j].elapsedNs, ref[j].elapsedNs);
            EXPECT_EQ(out[j].memReads, ref[j].memReads);
            EXPECT_EQ(out[j].memWrites, ref[j].memWrites);
            EXPECT_EQ(out[j].llcStats.misses, ref[j].llcStats.misses);
        }
    }
}

TEST(MixBatchDeterminism, GlobalEngineMatchesSequentialReference)
{
    // Through the ARCC_THREADS-sized global engine (the path CI pins
    // to 1 and 4 threads): the batch must equal per-job simulateMix.
    std::vector<MixJob> jobs = mixJobs();
    std::vector<SimResult> batch = simulateMixBatch(jobs);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        SCOPED_TRACE("job " + std::to_string(j));
        SimResult ref =
            simulateMix(jobs[j].mix, jobs[j].config, jobs[j].oracle);
        EXPECT_EQ(batch[j].ipcSum, ref.ipcSum);
        EXPECT_EQ(batch[j].memReads, ref.memReads);
        EXPECT_EQ(batch[j].memWrites, ref.memWrites);
    }
}

} // namespace
} // namespace arcc
