/**
 * @file
 * Fault-injection matrix tests: cell layout, control rows, capability
 * properties per codec family (chipkill bursts for the RS schemes,
 * SECDED's single-bit ceiling, BCH's t-bit floor), the exhaustive-cell
 * contract, and hash sensitivity.  Thread-count determinism and the
 * golden hash live in tests/test_determinism.cc.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/sim_engine.hh"
#include "faults/fault_matrix.hh"

namespace arcc
{
namespace
{

/** Run a one-codec campaign on a small private engine. */
FaultMatrixResult
runFor(const std::string &codec,
       std::uint64_t trials_per_cell = 64)
{
    FaultMatrixConfig cfg;
    cfg.codecs = {codec};
    cfg.trialsPerCell = trials_per_cell;
    cfg.exhaustiveLimit = 640;
    cfg.seed = 20130223;
    SimEngine engine(SimEngine::Options{2});
    return runFaultMatrix(cfg, &engine);
}

const FaultCell &
cell(const FaultMatrixResult &r, FailMode mode, int errors)
{
    for (const FaultCell &c : r.cells)
        if (c.mode == mode && c.errors == errors)
            return c;
    ADD_FAILURE() << "no cell " << toString(mode) << "/" << errors;
    static FaultCell none;
    return none;
}

TEST(FaultMatrix, CellLayoutFollowsTraits)
{
    // arcc-relaxed corrects 1 symbol -> error axis 1..3 in both
    // injected modes plus the control row.
    FaultMatrixResult r = runFor("arcc-relaxed");
    EXPECT_EQ(r.cells.size(), 1u + 3u + 3u);
    EXPECT_EQ(r.cells[0].mode, FailMode::None);
    EXPECT_EQ(r.cells[0].errors, 0);
    EXPECT_EQ(r.cells[0].symbolBits, 8);
    EXPECT_EQ(r.cells[0].family, "rs");

    // bch512-t4 corrects 4 bits -> 1..6.
    FaultMatrixResult b = runFor("bch512-t4", 16);
    EXPECT_EQ(b.cells.size(), 1u + 6u + 6u);
    EXPECT_EQ(b.cells[1].symbolBits, 1);

    // Every cell's counters add up to its trial count.
    for (const FaultCell &c : r.cells) {
        EXPECT_EQ(c.clean + c.corrected + c.miscorrected + c.due +
                      c.sdc,
                  c.trials);
    }
}

TEST(FaultMatrix, ControlRowIsAllClean)
{
    for (const std::string &key :
         {std::string("arcc-relaxed"), std::string("hsiao72"),
          std::string("bch512-t2"), std::string("lot9")}) {
        FaultMatrixResult r = runFor(key, 32);
        const FaultCell &c = cell(r, FailMode::None, 0);
        EXPECT_EQ(c.clean, c.trials) << key;
        EXPECT_EQ(c.sdc, 0u) << key;
        EXPECT_EQ(c.due, 0u) << key;
    }
}

TEST(FaultMatrix, RsBurstsAreChipkill)
{
    // The paper's property: any number of symbol errors confined to
    // one device costs at most one symbol per codeword, so every RS
    // burst cell corrects everything -- no DUE, no miscorrection, no
    // SDC.  This is the matrix-level restatement of Figure 2.1.
    for (const std::string &key :
         {std::string("sccdcd"), std::string("arcc-relaxed"),
          std::string("arcc-upgraded")}) {
        FaultMatrixResult r = runFor(key);
        for (const FaultCell &c : r.cells) {
            if (c.mode != FailMode::Burst)
                continue;
            EXPECT_EQ(c.corrected, c.trials)
                << key << " burst e=" << c.errors;
            EXPECT_EQ(c.miscorrected, 0u) << key;
            EXPECT_EQ(c.due, 0u) << key;
            EXPECT_EQ(c.sdc, 0u) << key;
        }
    }
}

TEST(FaultMatrix, SecdedBurstsAreNotChipkill)
{
    // The contrast row: two or more bit errors in one SECDED device
    // can land in one 72-bit word, which SECDED can only detect --
    // and must never silently corrupt.
    FaultMatrixResult r = runFor("hsiao72", 256);
    const FaultCell &b2 = cell(r, FailMode::Burst, 2);
    EXPECT_GT(b2.due, 0u);
    EXPECT_EQ(b2.sdc, 0u);
    EXPECT_EQ(b2.miscorrected, 0u);

    // Single-bit cells stay perfect (exhaustive over all 576 wire
    // bits x both modes).
    for (FailMode m : {FailMode::Random, FailMode::Burst}) {
        const FaultCell &c = cell(r, m, 1);
        EXPECT_TRUE(c.exhaustive);
        EXPECT_EQ(c.corrected, c.trials);
    }
}

TEST(FaultMatrix, BchCorrectsEverythingUpToT)
{
    FaultMatrixResult r = runFor("bch512-t4", 48);
    for (const FaultCell &c : r.cells) {
        if (c.errors == 0 || c.errors > 4)
            continue;
        // Every injected error count <= t recovers the data: flips in
        // the wire pad decode Clean with intact data, the rest
        // correct.  Nothing is lost or silently corrupted.
        EXPECT_EQ(c.clean + c.corrected, c.trials)
            << toString(c.mode) << " e=" << c.errors;
        EXPECT_EQ(c.miscorrected, 0u);
        EXPECT_EQ(c.due, 0u);
        EXPECT_EQ(c.sdc, 0u);
    }
}

TEST(FaultMatrix, ExhaustiveCellsEnumerateEveryCombination)
{
    // arcc-relaxed: 18 devices x 4 bytes = 72 symbol positions.
    FaultMatrixResult r = runFor("arcc-relaxed");
    const FaultCell &r1 = cell(r, FailMode::Random, 1);
    EXPECT_TRUE(r1.exhaustive);
    EXPECT_EQ(r1.trials, 72u); // C(72, 1).
    const FaultCell &b2 = cell(r, FailMode::Burst, 2);
    EXPECT_TRUE(b2.exhaustive);
    EXPECT_EQ(b2.trials, 18u * 6u); // devices x C(4, 2).
    // C(72, 2) = 2556 > limit: stratified.
    const FaultCell &r2 = cell(r, FailMode::Random, 2);
    EXPECT_FALSE(r2.exhaustive);
    EXPECT_EQ(r2.trials, 64u);
}

TEST(FaultMatrix, HashIsSensitiveToOutcomesAndConfig)
{
    FaultMatrixResult a = runFor("arcc-relaxed");
    FaultMatrixResult b = runFor("arcc-relaxed");
    EXPECT_EQ(a.hash(), b.hash()); // Reproducible.

    FaultMatrixResult other_seed = [&] {
        FaultMatrixConfig cfg;
        cfg.codecs = {"arcc-relaxed"};
        cfg.trialsPerCell = 64;
        cfg.exhaustiveLimit = 640;
        cfg.seed = 20130224;
        SimEngine engine(SimEngine::Options{2});
        return runFaultMatrix(cfg, &engine);
    }();
    EXPECT_NE(a.hash(), other_seed.hash());

    FaultMatrixResult other_codec = runFor("dcs");
    EXPECT_NE(a.hash(), other_codec.hash());

    // Tampering with a counter changes the digest.
    FaultMatrixResult tampered = runFor("arcc-relaxed");
    tampered.cells[1].corrected += 1;
    EXPECT_NE(a.hash(), tampered.hash());
}

TEST(FaultMatrixDeathTest, UnknownCodecKeyIsFatal)
{
    FaultMatrixConfig cfg;
    cfg.codecs = {"no-such-codec"};
    EXPECT_EXIT(runFaultMatrix(cfg), ::testing::ExitedWithCode(1),
                "unknown codec");
}

} // namespace
} // namespace arcc
