/**
 * @file
 * Codec-zoo tests: the registry contract (lookup, summaries, duplicate
 * rejection), CodecTraits self-description for every registered codec,
 * and the behaviour of the two zoo additions (Hsiao SECDED line codec,
 * BCH line codec) under the encode/corrupt/decode cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "arcc/ecc_scheme.hh"
#include "common/rng.hh"
#include "ecc/secded.hh"

namespace arcc
{
namespace
{

std::vector<std::uint8_t>
randomLine(const LineCodec &codec, Rng &rng)
{
    std::vector<std::uint8_t> data(codec.dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    return data;
}

TEST(CodecRegistry, BuiltinsAreRegistered)
{
    const std::vector<std::string> expected = {
        "arcc-relaxed", "arcc-upgraded", "arcc-upgraded2",
        "bch512-t2",    "bch512-t4",     "dcs",
        "hsiao72",      "lot18",         "lot9",
        "sccdcd",
    };
    for (const std::string &key : expected)
        EXPECT_TRUE(codecs::known(key)) << key;
    EXPECT_FALSE(codecs::known("no-such-codec"));

    // names() is sorted and contains at least the builtins.
    const std::vector<std::string> names = codecs::names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const std::string &key : expected)
        EXPECT_TRUE(std::find(names.begin(), names.end(), key) !=
                    names.end())
            << key;
}

TEST(CodecRegistry, MakeRoundTripsEveryBuiltin)
{
    Rng rng(7);
    LineWorkspace ws;
    for (const std::string &key : codecs::names()) {
        const std::unique_ptr<LineCodec> codec = codecs::make(key);
        ASSERT_NE(codec, nullptr) << key;
        EXPECT_FALSE(codecs::summary(key).empty()) << key;

        const CodecTraits traits = codec->traits();
        EXPECT_TRUE(traits.symbolBits == 1 || traits.symbolBits == 8)
            << key;
        EXPECT_GE(traits.correct, 1) << key;
        EXPECT_GE(traits.detect, 0) << key;
        EXPECT_GE(traits.codewords, 1) << key;
        EXPECT_FALSE(std::string(traits.family).empty()) << key;

        // Clean round trip through the registry-made instance.
        const std::vector<std::uint8_t> data = randomLine(*codec, rng);
        DeviceSlices slices;
        codec->encodeInto(data, slices, ws);
        EXPECT_EQ(slices.size(),
                  static_cast<std::size_t>(codec->devices()));
        for (const auto &s : slices)
            EXPECT_EQ(s.size(),
                      static_cast<std::size_t>(codec->sliceBytes()));
        std::vector<std::uint8_t> out(codec->dataBytes());
        DecodeResult dec;
        codec->decodeInto(slices, out, {}, ws, dec);
        EXPECT_EQ(dec.status, DecodeStatus::Clean) << key;
        EXPECT_EQ(out, data) << key;
    }
}

TEST(CodecRegistry, FamiliesMatchKeys)
{
    const std::set<std::string> rs = {"sccdcd", "dcs", "arcc-relaxed",
                                      "arcc-upgraded",
                                      "arcc-upgraded2"};
    for (const std::string &key : codecs::names()) {
        const std::string family =
            codecs::make(key)->traits().family;
        if (rs.count(key))
            EXPECT_EQ(family, "rs") << key;
        else if (key.rfind("lot", 0) == 0)
            EXPECT_EQ(family, "lot") << key;
        else if (key.rfind("bch", 0) == 0)
            EXPECT_EQ(family, "bch") << key;
        else if (key == "hsiao72")
            EXPECT_EQ(family, "secded") << key;
    }
}

TEST(CodecRegistry, RegisterAndMakeCustomCodec)
{
    codecs::registerCodec("test-bch64-t1", "unit-test codec", [] {
        return std::make_unique<BchLineCodec>(8, 1, 9,
                                              "test BCH-64 t=1");
    });
    ASSERT_TRUE(codecs::known("test-bch64-t1"));
    const std::unique_ptr<LineCodec> codec =
        codecs::make("test-bch64-t1");
    EXPECT_EQ(codec->dataBytes(), 8);
    EXPECT_EQ(codec->traits().correct, 1);
    EXPECT_EQ(codecs::summary("test-bch64-t1"), "unit-test codec");
}

TEST(CodecRegistryDeathTest, DuplicateKeyIsFatal)
{
    EXPECT_EXIT(
        {
            codecs::registerCodec("dup-key", "a", [] {
                return codecs::make("sccdcd");
            });
            codecs::registerCodec("dup-key", "b", [] {
                return codecs::make("sccdcd");
            });
        },
        ::testing::ExitedWithCode(1), "duplicate codec key");
}

TEST(CodecRegistryDeathTest, UnknownKeyIsFatal)
{
    EXPECT_EXIT(codecs::make("definitely-not-registered"),
                ::testing::ExitedWithCode(1), "unknown codec");
}

// ---------------------------------------------------------------------
// Hsiao SECDED line codec
// ---------------------------------------------------------------------

TEST(SecdedLineCodec, LayoutMatchesNineDeviceDimm)
{
    SecdedLineCodec codec;
    EXPECT_EQ(codec.devices(), 9);
    EXPECT_EQ(codec.sliceBytes(), 8);
    EXPECT_EQ(codec.dataBytes(), 64);
    EXPECT_EQ(codec.traits().symbolBits, 1);
    EXPECT_EQ(codec.traits().codewords, 8);

    // Device d holds byte lane d of every word; device 8 the checks.
    Rng rng(8);
    std::vector<std::uint8_t> data(64);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    LineWorkspace ws;
    DeviceSlices slices;
    codec.encodeInto(data, slices, ws);
    for (int w = 0; w < 8; ++w) {
        std::uint64_t word = 0;
        for (int d = 0; d < 8; ++d) {
            EXPECT_EQ(slices[d][w], data[w * 8 + d]);
            word |= static_cast<std::uint64_t>(data[w * 8 + d])
                    << (8 * d);
        }
        EXPECT_EQ(slices[8][w], Secded::encode(word));
    }
}

TEST(SecdedLineCodec, CorrectsSingleBitPerWordEverywhere)
{
    SecdedLineCodec codec;
    LineWorkspace ws;
    Rng rng(9);
    std::vector<std::uint8_t> data(64);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));

    // One flipped bit in every word (8 distinct devices): all eight
    // words correct independently.
    DeviceSlices slices;
    codec.encodeInto(data, slices, ws);
    for (int w = 0; w < 8; ++w)
        slices[w][w] ^= static_cast<std::uint8_t>(1 << (w % 8));
    std::vector<std::uint8_t> out(64);
    DecodeResult dec;
    codec.decodeInto(slices, out, {}, ws, dec);
    EXPECT_EQ(dec.status, DecodeStatus::Corrected);
    EXPECT_EQ(dec.symbolsCorrected, 8);
    EXPECT_EQ(dec.positions.size(), 8u);
    EXPECT_EQ(out, data);
}

TEST(SecdedLineCodec, WholeDeviceFailureIsNotChipkill)
{
    // The motivating contrast: an 8-bit-per-word device failure
    // overwhelms SECDED.  Flipping two bits per word must be Detected
    // (never silently wrong).
    SecdedLineCodec codec;
    LineWorkspace ws;
    Rng rng(10);
    std::vector<std::uint8_t> data(64);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    DeviceSlices slices;
    codec.encodeInto(data, slices, ws);
    for (int w = 0; w < 8; ++w)
        slices[3][w] ^= 0x21; // Two bits of device 3 in every word.
    std::vector<std::uint8_t> out(64);
    DecodeResult dec;
    codec.decodeInto(slices, out, {}, ws, dec);
    EXPECT_EQ(dec.status, DecodeStatus::Detected);
}

TEST(SecdedLineCodec, CheckDevicePositionsEncodeWordAndBit)
{
    SecdedLineCodec codec;
    LineWorkspace ws;
    std::vector<std::uint8_t> data(64, 0x5a);
    DeviceSlices slices;
    codec.encodeInto(data, slices, ws);
    // Flip the overall-parity bit of word 5 (check bit 7 is Hamming
    // position 72 == the parity bit).
    slices[8][5] ^= 0x80;
    std::vector<std::uint8_t> out(64);
    DecodeResult dec;
    codec.decodeInto(slices, out, {}, ws, dec);
    ASSERT_EQ(dec.status, DecodeStatus::Corrected);
    ASSERT_EQ(dec.positions.size(), 1u);
    EXPECT_EQ(dec.positions[0], 5 * 73 + 72);
    EXPECT_EQ(out, data);
}

// ---------------------------------------------------------------------
// BCH line codec
// ---------------------------------------------------------------------

TEST(BchLineCodec, GeometryCoversTheWireImage)
{
    for (const std::string &key : {std::string("bch512-t2"),
                                   std::string("bch512-t4")}) {
        const std::unique_ptr<LineCodec> codec = codecs::make(key);
        const auto *bch = dynamic_cast<const BchLineCodec *>(
            codec.get());
        ASSERT_NE(bch, nullptr) << key;
        EXPECT_EQ(codec->devices(), 18) << key;
        EXPECT_GE(codec->devices() * codec->sliceBytes(),
                  bch->bch().codeBytes())
            << key;
        EXPECT_EQ(codec->traits().correct, bch->bch().t()) << key;
        EXPECT_EQ(codec->traits().symbolBits, 1) << key;
    }
}

TEST(BchLineCodec, CorrectsScatteredBitErrorsAcrossDevices)
{
    const std::unique_ptr<LineCodec> codec = codecs::make("bch512-t4");
    LineWorkspace ws;
    Rng rng(11);
    std::vector<std::uint8_t> data(codec->dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    DeviceSlices slices;
    codec->encodeInto(data, slices, ws);
    // Four single-bit errors on four different devices: beyond any
    // per-device scheme's view, routine for t=4 BCH.
    for (int d = 0; d < 4; ++d)
        slices[d * 4][0] ^= static_cast<std::uint8_t>(1 << d);
    std::vector<std::uint8_t> out(codec->dataBytes());
    DecodeResult dec;
    codec->decodeInto(slices, out, {}, ws, dec);
    EXPECT_EQ(dec.status, DecodeStatus::Corrected);
    EXPECT_EQ(dec.symbolsCorrected, 4);
    EXPECT_EQ(out, data);
}

TEST(BchLineCodec, WritesCorrectionsBackToSlices)
{
    const std::unique_ptr<LineCodec> codec = codecs::make("bch512-t2");
    LineWorkspace ws;
    Rng rng(12);
    std::vector<std::uint8_t> data(codec->dataBytes());
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    DeviceSlices slices;
    codec->encodeInto(data, slices, ws);
    const DeviceSlices clean = slices;
    slices[7][1] ^= 0x10;
    std::vector<std::uint8_t> out(codec->dataBytes());
    DecodeResult dec;
    codec->decodeInto(slices, out, {}, ws, dec);
    EXPECT_EQ(dec.status, DecodeStatus::Corrected);
    EXPECT_EQ(slices, clean); // Fix written back.
    EXPECT_EQ(out, data);
}

} // namespace
} // namespace arcc
