/**
 * @file
 * Binary BCH tests: construction invariants, round trips, exhaustive
 * single-bit correction, <= t sweeps, detection beyond t, and the
 * exact fast-vs-reference oracle equality (see ecc/bch.hh for why the
 * equality is exact rather than statistical).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "ecc/bch.hh"

namespace arcc
{
namespace
{

/** The zoo's configurations plus a couple of small stress shapes. */
struct Shape
{
    int dataBits;
    int t;
};

const std::vector<Shape> &
shapes()
{
    static const std::vector<Shape> s = {
        {64, 1}, {64, 2}, {128, 3}, {512, 2}, {512, 4},
    };
    return s;
}

std::vector<std::uint8_t>
randomWire(const Bch &code, Rng &rng)
{
    std::vector<std::uint8_t> wire(code.codeBytes(), 0);
    for (int i = 0; i < code.dataBits() / 8; ++i)
        wire[i] = static_cast<std::uint8_t>(rng.below(256));
    code.encode(wire);
    return wire;
}

void
flip(std::vector<std::uint8_t> &wire, int bit)
{
    wire[bit / 8] ^= static_cast<std::uint8_t>(1 << (bit % 8));
}

TEST(Bch, ConstructionInvariants)
{
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        EXPECT_EQ(code.dataBits(), s.dataBits);
        EXPECT_EQ(code.t(), s.t);
        // BCH bound: at most m*t parity bits, at least ... something
        // positive; and the shortened length must fit the field.
        EXPECT_GT(code.parityBits(), 0);
        EXPECT_LE(code.parityBits(), code.m() * s.t);
        EXPECT_LE(code.codeBits(), code.field().n());
        // Coefficient <-> wire mapping is a bijection.
        for (int c = 0; c < code.codeBits(); ++c)
            EXPECT_EQ(code.wireToCoeff(code.coeffToWire(c)), c);
    }
}

TEST(Bch, CleanRoundTrip)
{
    Rng rng(101);
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        BchWorkspace ws;
        for (int rep = 0; rep < 32; ++rep) {
            std::vector<std::uint8_t> wire = randomWire(code, rng);
            const std::vector<std::uint8_t> orig = wire;
            Bch::Result res = code.decode(wire, ws);
            EXPECT_EQ(res.status, DecodeStatus::Clean);
            EXPECT_EQ(res.bitsCorrected, 0);
            EXPECT_EQ(wire, orig);
        }
    }
}

TEST(Bch, EncodeKeepsWirePadZero)
{
    Rng rng(102);
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        std::vector<std::uint8_t> wire(code.codeBytes(), 0xff);
        for (int i = 0; i < code.dataBits() / 8; ++i)
            wire[i] = static_cast<std::uint8_t>(rng.below(256));
        code.encode(wire);
        for (int b = code.codeBits(); b < code.codeBytes() * 8; ++b)
            EXPECT_EQ((wire[b / 8] >> (b % 8)) & 1, 0) << b;
    }
}

TEST(Bch, CorrectsEverySingleBitExhaustively)
{
    Rng rng(103);
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        BchWorkspace ws;
        const std::vector<std::uint8_t> clean = randomWire(code, rng);
        for (int bit = 0; bit < code.codeBits(); ++bit) {
            std::vector<std::uint8_t> wire = clean;
            flip(wire, bit);
            std::vector<int> positions;
            Bch::Result res = code.decode(wire, ws, &positions);
            ASSERT_EQ(res.status, DecodeStatus::Corrected) << bit;
            EXPECT_EQ(res.bitsCorrected, 1) << bit;
            ASSERT_EQ(positions.size(), 1u) << bit;
            EXPECT_EQ(positions[0], bit);
            EXPECT_EQ(wire, clean) << bit;
        }
    }
}

TEST(Bch, CorrectsUpToTErrors)
{
    Rng rng(104);
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        BchWorkspace ws;
        for (int e = 2; e <= s.t; ++e) {
            for (int rep = 0; rep < 64; ++rep) {
                const std::vector<std::uint8_t> clean =
                    randomWire(code, rng);
                std::vector<std::uint8_t> wire = clean;
                std::vector<int> bits;
                while (static_cast<int>(bits.size()) < e) {
                    int b = static_cast<int>(
                        rng.below(code.codeBits()));
                    if (std::find(bits.begin(), bits.end(), b) ==
                        bits.end())
                        bits.push_back(b);
                }
                for (int b : bits)
                    flip(wire, b);
                Bch::Result res = code.decode(wire, ws);
                ASSERT_EQ(res.status, DecodeStatus::Corrected)
                    << "e=" << e;
                EXPECT_EQ(res.bitsCorrected, e);
                EXPECT_EQ(wire, clean);
            }
        }
    }
}

TEST(Bch, DetectsTPlusOneErrorsWithoutCorruptingData)
{
    // t+1 errors must never be "corrected" back to a *different*
    // codeword silently claiming success with <= t flips of the
    // original -- any accepted correction passes the syndrome-delta
    // check, so a t+1 pattern either raises Detected or lands on a
    // true codeword (miscorrection, counted by the fault matrix, but
    // then the result is a codeword and both decoders agree; the
    // equality fuzz below pins that).  Here we only require: never
    // Clean.
    Rng rng(105);
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        BchWorkspace ws;
        for (int rep = 0; rep < 64; ++rep) {
            std::vector<std::uint8_t> wire = randomWire(code, rng);
            std::vector<int> bits;
            while (static_cast<int>(bits.size()) < s.t + 1) {
                int b =
                    static_cast<int>(rng.below(code.codeBits()));
                if (std::find(bits.begin(), bits.end(), b) ==
                    bits.end())
                    bits.push_back(b);
            }
            for (int b : bits)
                flip(wire, b);
            Bch::Result res = code.decode(wire, ws);
            EXPECT_NE(res.status, DecodeStatus::Clean);
        }
    }
}

TEST(Bch, FastMatchesReferenceOracleExactly)
{
    // Weight 0 .. t+2: beyond-capability weights included on purpose,
    // since that is where two independently written decoders would
    // diverge if either skipped its full-syndrome verification.
    const std::uint64_t seed = 0xb0c4'2026'0808ULL;
    std::printf("[ seed ] BchFastVsReference seed=0x%llx\n",
                static_cast<unsigned long long>(seed));
    for (const Shape &s : shapes()) {
        Bch code(s.dataBits, s.t);
        BchWorkspace ws;
        for (int e = 0; e <= s.t + 2; ++e) {
            Rng rng = Rng::stream(seed, s.dataBits * 100 + s.t * 10 +
                                            static_cast<std::uint64_t>(
                                                e));
            for (int rep = 0; rep < 24; ++rep) {
                std::vector<std::uint8_t> wire = randomWire(code, rng);
                std::vector<int> bits;
                while (static_cast<int>(bits.size()) < e) {
                    int b = static_cast<int>(
                        rng.below(code.codeBits()));
                    if (std::find(bits.begin(), bits.end(), b) ==
                        bits.end())
                        bits.push_back(b);
                }
                for (int b : bits)
                    flip(wire, b);

                std::vector<std::uint8_t> fastWire = wire;
                std::vector<std::uint8_t> refWire = wire;
                std::vector<int> fastPos, refPos;
                Bch::Result fast =
                    code.decode(fastWire, ws, &fastPos);
                Bch::Result ref =
                    BchReference::decode(code, refWire, &refPos);

                ASSERT_EQ(fast.status, ref.status)
                    << "dataBits=" << s.dataBits << " t=" << s.t
                    << " e=" << e << " rep=" << rep;
                EXPECT_EQ(fast.bitsCorrected, ref.bitsCorrected);
                EXPECT_EQ(fastWire, refWire);
                std::sort(fastPos.begin(), fastPos.end());
                std::sort(refPos.begin(), refPos.end());
                EXPECT_EQ(fastPos, refPos);
            }
        }
    }
}

TEST(BchDeathTest, RejectsBadParameters)
{
    EXPECT_EXIT(Bch(0, 2), ::testing::ExitedWithCode(1), "data_bits");
    EXPECT_EXIT(Bch(63, 2), ::testing::ExitedWithCode(1), "data_bits");
    EXPECT_EXIT(Bch(64, 0), ::testing::ExitedWithCode(1), "t");
    EXPECT_EXIT(Bch(64, 17), ::testing::ExitedWithCode(1), "t");
}

} // namespace
} // namespace arcc
