/**
 * @file
 * Address-map tests: bijectivity, the channel-alternation property
 * ARCC depends on, and the page geometry behind Table 7.4.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "common/units.hh"
#include "dram/address_map.hh"

namespace arcc
{
namespace
{

struct MapCase
{
    const char *config;
    MapPolicy policy;
};

MemoryConfig
configByName(const std::string &name)
{
    if (name == "baseline")
        return baselineConfig();
    if (name == "arcc")
        return arccConfig();
    if (name == "arcc4")
        return arccConfig4();
    if (name == "arcc8")
        return arccConfig8();
    return lotEcc9Config();
}

class MapSweep : public ::testing::TestWithParam<MapCase>
{
};

TEST_P(MapSweep, DecodeEncodeRoundTripsOnRandomAddresses)
{
    MemoryConfig cfg = configByName(GetParam().config);
    AddressMap map(cfg, GetParam().policy);
    Rng rng(1);
    for (int t = 0; t < 5000; ++t) {
        std::uint64_t addr =
            (rng.below(map.capacity() / kLineBytes)) * kLineBytes;
        DramCoord c = map.decode(addr);
        EXPECT_EQ(map.encode(c), addr);
    }
}

TEST_P(MapSweep, CoordinatesStayInRange)
{
    MemoryConfig cfg = configByName(GetParam().config);
    AddressMap map(cfg, GetParam().policy);
    Rng rng(2);
    for (int t = 0; t < 5000; ++t) {
        std::uint64_t addr =
            (rng.below(map.capacity() / kLineBytes)) * kLineBytes;
        DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, cfg.channels);
        EXPECT_LT(c.rank, cfg.ranksPerChannel);
        EXPECT_LT(c.bank, cfg.device.banks);
        EXPECT_LT(c.column, map.linesPerRow());
        EXPECT_LT(c.row, map.rows());
    }
}

TEST_P(MapSweep, DistinctCoordinatesForDistinctLines)
{
    MemoryConfig cfg = configByName(GetParam().config);
    AddressMap map(cfg, GetParam().policy);
    std::set<std::tuple<int, int, int, std::uint32_t, std::uint32_t>>
        seen;
    // Walk a contiguous region; every line must land somewhere unique.
    for (std::uint64_t line = 0; line < 4096; ++line) {
        DramCoord c = map.decode(line * kLineBytes);
        auto key = std::make_tuple(c.channel, c.rank, c.bank, c.row,
                                   c.column);
        EXPECT_TRUE(seen.insert(key).second) << "line " << line;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigsAllPolicies, MapSweep,
    ::testing::Values(MapCase{"baseline", MapPolicy::HiPerf},
                      MapCase{"baseline", MapPolicy::ClosePage},
                      MapCase{"baseline", MapPolicy::Base},
                      MapCase{"arcc", MapPolicy::HiPerf},
                      MapCase{"arcc", MapPolicy::ClosePage},
                      MapCase{"arcc", MapPolicy::Base},
                      MapCase{"arcc4", MapPolicy::HiPerf},
                      MapCase{"arcc4", MapPolicy::ClosePage},
                      MapCase{"arcc8", MapPolicy::HiPerf},
                      MapCase{"arcc8", MapPolicy::Base},
                      MapCase{"lot9", MapPolicy::HiPerf}),
    [](const ::testing::TestParamInfo<MapCase> &info) {
        std::string policy =
            info.param.policy == MapPolicy::HiPerf      ? "HiPerf"
            : info.param.policy == MapPolicy::ClosePage ? "ClosePage"
                                                        : "Base";
        return std::string(info.param.config) + "_" + policy;
    });

TEST(AddressMap, AdjacentLinesAlternateChannelsUnderHiPerf)
{
    // Section 4.1: the two 64B sub-lines of an upgraded 128B line must
    // live in different channels at otherwise identical coordinates.
    AddressMap map(arccConfig(), MapPolicy::HiPerf);
    Rng rng(3);
    for (int t = 0; t < 2000; ++t) {
        std::uint64_t pair_base =
            (rng.below(map.capacity() / kUpgradedLineBytes)) *
            kUpgradedLineBytes;
        DramCoord a = map.decode(pair_base);
        DramCoord b = map.decode(pair_base + kLineBytes);
        EXPECT_NE(a.channel, b.channel);
        EXPECT_EQ(a.rank, b.rank);
        EXPECT_EQ(a.bank, b.bank);
        EXPECT_EQ(a.row, b.row);
        EXPECT_EQ(a.column, b.column);
    }
}

TEST(AddressMap, PairsSpanAdjacentEvenOddChannelsOnWideConfigs)
{
    // The property ChannelShardPlan's probe discovers: under the
    // interleaved maps a 128B pair always spans channels {2k, 2k+1},
    // so the plan can shard a 2N-channel system into N pairable
    // groups (and N*2 clean-traffic groups) instead of one.
    for (int channels : {4, 8}) {
        SCOPED_TRACE("channels=" + std::to_string(channels));
        AddressMap map(withChannels(arccConfig(), channels),
                       MapPolicy::HiPerf);
        Rng rng(4);
        for (int t = 0; t < 2000; ++t) {
            std::uint64_t pair_base =
                (rng.below(map.capacity() / kUpgradedLineBytes)) *
                kUpgradedLineBytes;
            DramCoord a = map.decode(pair_base);
            DramCoord b = map.decode(pair_base + kLineBytes);
            EXPECT_EQ(a.channel % 2, 0);
            EXPECT_EQ(b.channel, a.channel + 1);
        }
    }
}

TEST(AddressMap, PageIsContainedInOneRankBankRowHalf)
{
    // Table 7.4's fractions need every 4KB page to live in a single
    // (rank, bank, row, half-row) at all (channel, column) positions.
    AddressMap map(arccConfig(), MapPolicy::HiPerf);
    Rng rng(4);
    std::uint64_t pages = map.capacity() / kPageBytes;
    for (int t = 0; t < 200; ++t) {
        std::uint64_t page = rng.below(pages);
        DramCoord first = map.decode(page * kPageBytes);
        bool first_half = first.column < map.linesPerRow() / 2;
        for (std::uint64_t l = 0; l < kLinesPerPage; ++l) {
            DramCoord c =
                map.decode(page * kPageBytes + l * kLineBytes);
            EXPECT_EQ(c.rank, first.rank);
            EXPECT_EQ(c.bank, first.bank);
            EXPECT_EQ(c.row, first.row);
            EXPECT_EQ(c.column < map.linesPerRow() / 2, first_half);
        }
    }
}

TEST(AddressMap, PageSpreadsAcrossAllChannels)
{
    AddressMap map(arccConfig(), MapPolicy::HiPerf);
    std::set<int> channels;
    for (std::uint64_t l = 0; l < kLinesPerPage; ++l)
        channels.insert(map.decode(l * kLineBytes).channel);
    EXPECT_EQ(static_cast<int>(channels.size()),
              arccConfig().channels);
}

TEST(AddressMap, TwoPagesPerRowAsThePaperAssumes)
{
    // Section 7.1: two 4KB pages per row.  Count distinct pages whose
    // lines map to row 0 / bank 0 / rank 0.
    MemoryConfig cfg = arccConfig();
    AddressMap map(cfg, MapPolicy::HiPerf);
    std::set<std::uint64_t> pages;
    for (std::uint64_t addr = 0; addr < map.capacity();
         addr += kLineBytes) {
        DramCoord c = map.decode(addr);
        if (c.row == 0 && c.bank == 0 && c.rank == 0)
            pages.insert(addr / kPageBytes);
        if (addr > 64 * kPageBytes)
            break; // the first rows are enough.
    }
    EXPECT_EQ(pages.size(), static_cast<std::size_t>(cfg.pagesPerRow));
}

TEST(AddressMap, CapacityMatchesConfig)
{
    for (const char *name : {"baseline", "arcc", "lot9"}) {
        MemoryConfig cfg = configByName(name);
        AddressMap map(cfg, MapPolicy::HiPerf);
        EXPECT_EQ(map.capacity(), cfg.dataBytes()) << name;
    }
    // Both Table 7.1 configs are 4 GB of data.
    EXPECT_EQ(baselineConfig().dataBytes(), 4 * kGiB);
    EXPECT_EQ(arccConfig().dataBytes(), 4 * kGiB);
}

} // namespace
} // namespace arcc
