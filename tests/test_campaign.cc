/**
 * @file
 * Campaign-driver tests: spec validation, decomposition invariance,
 * interrupt/resume digest equality, campaign-layer record
 * monotonicity (duplicates / reorders / layout drift are fatal), and
 * a real SIGKILL mid-campaign followed by a bit-identical resume.
 *
 * Every engine in this file is a 1-thread local engine: the SIGKILL
 * test fork()s, and a forked child must never inherit a half-locked
 * thread pool.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hh"
#include "campaign/checkpoint.hh"
#include "engine/sim_engine.hh"

namespace arcc
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("arcc_test_campaign." + tag + "." +
             std::to_string(::getpid())))
        .string();
}

struct TempFile
{
    explicit TempFile(std::string p) : path(std::move(p)) {}
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
};

/** Small but non-trivial spec shared by most tests. */
CampaignSpec
testSpec()
{
    CampaignSpec spec;
    spec.channels = 512;
    spec.epochTrials = 64;
    spec.shardTrials = 16;
    spec.seed = 20130223;
    return spec;
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

TEST(Campaign, SpecValidation)
{
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    spec.devicesPerGroup = 18; // divides 72
    CampaignDriver ok(spec, &engine);
    EXPECT_EQ(ok.spec().channels, 512u);

    EXPECT_EQ(spec.epochCount(), 8u);
    EXPECT_EQ(spec.epochEnd(0), 64u);
    EXPECT_EQ(spec.epochEnd(7), 512u);
    spec.channels = 500; // short last epoch
    EXPECT_EQ(spec.epochCount(), 8u);
    EXPECT_EQ(spec.epochEnd(7), 500u);
}

TEST(CampaignDeathTest, BadSpecsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    {
        CampaignSpec s = testSpec();
        s.channels = 0;
        EXPECT_EXIT(CampaignDriver(s, &engine),
                    ::testing::ExitedWithCode(1), "zero channels");
    }
    {
        CampaignSpec s = testSpec();
        s.epochTrials = 0;
        EXPECT_EXIT(CampaignDriver(s, &engine),
                    ::testing::ExitedWithCode(1), "zero epochTrials");
    }
    {
        CampaignSpec s = testSpec();
        s.devicesPerGroup = 17; // does not divide 72
        EXPECT_EXIT(CampaignDriver(s, &engine),
                    ::testing::ExitedWithCode(1), "does not divide");
    }
}

TEST(Campaign, ConfigHashSeparatesExperiments)
{
    CampaignSpec a = testSpec();
    CampaignSpec b = a;
    EXPECT_EQ(a.configHash(), b.configHash());
    b.devicesPerGroup = 36;
    EXPECT_NE(a.configHash(), b.configHash());
    b = a;
    b.epochTrials = 128; // epoch layout is part of the experiment
    EXPECT_NE(a.configHash(), b.configHash());
    // The seed is carried separately, not hashed.
    b = a;
    b.seed = 999;
    EXPECT_EQ(a.configHash(), b.configHash());
}

TEST(Campaign, EpochDecompositionMatchesSerialKernel)
{
    // The engine-sharded, epoch-folded run must agree exactly with
    // one serial pass of the trial kernel on all integer state.
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);

    CampaignAggregate serial = driver.runTrials(0, spec.channels);
    CampaignRunResult run = driver.run();

    EXPECT_EQ(run.aggregate.trials, serial.trials);
    EXPECT_EQ(run.aggregate.faultsSampled, serial.faultsSampled);
    EXPECT_EQ(run.aggregate.trialsWithFault, serial.trialsWithFault);
    EXPECT_EQ(run.aggregate.sdcCandidates, serial.sdcCandidates);
    EXPECT_EQ(run.aggregate.dueCandidates, serial.dueCandidates);
    EXPECT_EQ(run.aggregate.affectedHist.hash(),
              serial.affectedHist.hash());
    EXPECT_EQ(run.aggregate.faultHist.hash(), serial.faultHist.hash());
    EXPECT_EQ(run.epochsRun, spec.epochCount());
    EXPECT_FALSE(run.interrupted);
    EXPECT_GT(run.aggregate.faultsSampled, 0u);
}

TEST(Campaign, InterruptAndResumeIsBitIdentical)
{
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);
    const std::uint64_t golden = driver.run().digest(spec);

    for (std::uint64_t split : {1u, 3u, 7u}) {
        SCOPED_TRACE("split=" + std::to_string(split));
        TempFile ckpt(tempPath("resume." + std::to_string(split)));

        CampaignRunOptions first;
        first.checkpointPath = ckpt.path;
        first.maxEpochs = split;
        CampaignRunResult partial = driver.run(first);
        EXPECT_TRUE(partial.interrupted);
        EXPECT_EQ(partial.epochsRun, split);
        EXPECT_NE(partial.digest(spec), golden);

        CampaignRunOptions rest;
        rest.checkpointPath = ckpt.path;
        CampaignRunResult resumed = driver.run(rest);
        EXPECT_FALSE(resumed.interrupted);
        EXPECT_EQ(resumed.resumedFromTrial,
                  split * spec.epochTrials);
        EXPECT_EQ(resumed.epochsRun, spec.epochCount() - split);
        EXPECT_EQ(resumed.digest(spec), golden);
    }
}

TEST(Campaign, StopRequestedSealsAndResumes)
{
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);
    const std::uint64_t golden = driver.run().digest(spec);

    TempFile ckpt(tempPath("sigstop"));
    int epochs_seen = 0;
    CampaignRunOptions stopping;
    stopping.checkpointPath = ckpt.path;
    stopping.stopRequested = [&] { return ++epochs_seen > 2; };
    CampaignRunResult partial = driver.run(stopping);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.epochsRun, 2u);

    CampaignRunOptions rest;
    rest.checkpointPath = ckpt.path;
    EXPECT_EQ(driver.run(rest).digest(spec), golden);
}

TEST(Campaign, ResumeFromCompleteLogIsANoOp)
{
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);
    TempFile ckpt(tempPath("complete"));

    CampaignRunOptions options;
    options.checkpointPath = ckpt.path;
    const std::uint64_t golden = driver.run(options).digest(spec);

    CampaignRunResult again = driver.run(options);
    EXPECT_EQ(again.epochsRun, 0u);
    EXPECT_EQ(again.resumedFromTrial, spec.channels);
    EXPECT_FALSE(again.interrupted);
    EXPECT_EQ(again.digest(spec), golden);
}

TEST(CampaignDeathTest, DuplicatedOrReorderedRecordsAreFatal)
{
    // The checkpoint layer validates framing; epoch monotonicity is
    // the campaign's job.  A duplicated sealed record (e.g. a log
    // doctored or double-played) must refuse to resume.
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);
    TempFile ckpt(tempPath("duplicate"));

    CampaignRunOptions two;
    two.checkpointPath = ckpt.path;
    two.maxEpochs = 2;
    driver.run(two);

    // Duplicate the last sealed frame byte-for-byte.
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(ckpt.path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    std::size_t off = 0;
    std::size_t last = 0;
    while (off < bytes.size()) {
        last = off;
        std::uint32_t len = 0;
        for (int i = 3; i >= 0; --i)
            len = (len << 8) | bytes[off + i];
        off += kFrameOverheadBytes + len;
    }
    {
        std::ofstream out(ckpt.path,
                          std::ios::binary | std::ios::app);
        out.write(reinterpret_cast<const char *>(bytes.data() + last),
                  static_cast<std::streamsize>(bytes.size() - last));
    }

    CampaignRunOptions resume;
    resume.checkpointPath = ckpt.path;
    EXPECT_EXIT(driver.run(resume), ::testing::ExitedWithCode(1),
                "duplicated or reordered");
}

TEST(CampaignDeathTest, HandCraftedInconsistentRecordsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    CampaignSpec spec = testSpec();
    CampaignDriver driver(spec, &engine);
    CheckpointIdentity identity;
    identity.configHash = spec.configHash();
    identity.seed = spec.seed;
    identity.endTrial = spec.channels; // whole-range single worker

    // Epoch record whose cursor does not match the spec's layout.
    TempFile layout(tempPath("layout"));
    {
        CheckpointWriter w =
            CheckpointWriter::create(layout.path, identity);
        std::vector<std::uint8_t> payload;
        putU64(payload, 0);
        putU64(payload, spec.epochTrials + 1); // wrong epoch end
        CampaignAggregate::empty().serializeTo(payload);
        w.append(payload);
    }
    CampaignRunOptions o1;
    o1.checkpointPath = layout.path;
    EXPECT_EXIT(driver.run(o1), ::testing::ExitedWithCode(1),
                "epochTrials changed");

    // Valid layout but the aggregate does not cover the cursor.
    TempFile skew(tempPath("skew"));
    {
        CheckpointWriter w =
            CheckpointWriter::create(skew.path, identity);
        std::vector<std::uint8_t> payload;
        putU64(payload, 0);
        putU64(payload, spec.epochTrials);
        CampaignAggregate::empty().serializeTo(payload); // 0 trials
        w.append(payload);
    }
    CampaignRunOptions o2;
    o2.checkpointPath = skew.path;
    EXPECT_EXIT(driver.run(o2), ::testing::ExitedWithCode(1),
                "cursor says");
}

TEST(Campaign, SigkillMidCampaignResumesBitIdentically)
{
    // The real thing: a child process is SIGKILLed while running the
    // checkpointed campaign -- possibly mid-append -- and a resume in
    // this process must land on the uninterrupted golden digest.
    // 1-thread engines keep the fork() clean of pool threads.
    CampaignSpec spec = testSpec();
    spec.channels = 4096;
    spec.epochTrials = 128;

    SimEngine engine(SimEngine::Options{1});
    CampaignDriver driver(spec, &engine);
    const std::uint64_t golden = driver.run().digest(spec);

    TempFile ckpt(tempPath("sigkill"));
    // Kill once the log has grown past the header: at that point at
    // least one epoch record is sealed or mid-append (a mid-append
    // kill is the torn-tail case recovery must absorb).
    const std::size_t kill_after =
        kFrameOverheadBytes + kHeaderPayloadBytes + 1;

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        // Child: plain checkpointed run.  _exit keeps gtest teardown
        // from running twice.
        SimEngine child_engine(SimEngine::Options{1});
        CampaignDriver child(spec, &child_engine);
        CampaignRunOptions o;
        o.checkpointPath = ckpt.path;
        child.run(o);
        ::_exit(0);
    }

    // Parent: kill as soon as the log outgrows the header (or let
    // the child finish -- resume-from-complete is equality too).
    bool reaped = false;
    for (int spin = 0; spin < 20000; ++spin) {
        std::error_code ec;
        const auto size =
            std::filesystem::file_size(ckpt.path, ec);
        if (!ec && size >= kill_after)
            break;
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            reaped = true;
            break;
        }
        ::usleep(100);
    }
    if (!reaped) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    }

    CampaignRunOptions resume;
    resume.checkpointPath = ckpt.path;
    CampaignRunResult resumed = driver.run(resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.aggregate.trials, spec.channels);
    EXPECT_EQ(resumed.digest(spec), golden);
}

} // namespace
} // namespace arcc
