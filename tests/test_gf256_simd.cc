/**
 * @file
 * Unit tests for the SIMD GF(2^8) kernel layer (ecc/gf256_simd.hh).
 *
 * The dispatch contract under test: every vector kernel is
 * bit-identical to its scalar tier, which in turn is the same
 * arithmetic as the product-table loops the oracle fuzz pins against
 * RsReference.  Running the scalar and the active tier side by side
 * in one process checks the vector half of that chain directly; the
 * CI scalar-forced build (-DARCC_SIMD=OFF) re-runs this whole binary
 * with the vector bodies compiled out.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "ecc/gf256.hh"
#include "ecc/gf256_simd.hh"
#include "ecc/reed_solomon.hh"
#include "ecc/simd.hh"

namespace arcc
{
namespace
{

TEST(Gf256Simd, NibbleTableReconstructsEveryProduct)
{
    // a * x == nibRow(a)[x & 0xf] ^ nibRow(a)[16 + (x >> 4)] for the
    // full 256 x 256 product space.
    for (int a = 0; a < 256; ++a) {
        const std::uint8_t *row = GF256::nibRow(
            static_cast<std::uint8_t>(a));
        for (int x = 0; x < 256; ++x) {
            const std::uint8_t lo = row[x & 0x0f];
            const std::uint8_t hi = row[16 + (x >> 4)];
            ASSERT_EQ(lo ^ hi,
                      GF256::mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(x)))
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(Gf256Simd, TierDispatchIsSane)
{
    const simd::Tier det = simd::detectTier();
    const simd::Tier act = simd::activeTier();
    EXPECT_NE(std::string(simd::tierName(det)), "?");
    EXPECT_NE(std::string(simd::tierName(act)), "?");
#if defined(ARCC_SIMD_DISABLED)
    EXPECT_EQ(det, simd::Tier::Scalar);
    EXPECT_EQ(act, simd::Tier::Scalar);
#endif
    // The env cap can only lower the tier, never raise it past the
    // hardware.
    if (det == simd::Tier::Scalar) {
        EXPECT_EQ(act, simd::Tier::Scalar);
    }
}

TEST(Gf256Simd, MulConstMatchesScalarTierForAllLengths)
{
    Rng rng(0x51dc0de);
    const simd::Tier act = simd::activeTier();
    std::vector<std::uint8_t> in(257), out_s(257), out_v(257);
    for (int len = 0; len <= 257; len += (len < 40 ? 1 : 7)) {
        for (int t = 0; t < 8; ++t) {
            const std::uint8_t a =
                static_cast<std::uint8_t>(rng.below(256));
            for (int i = 0; i < len; ++i)
                in[i] = static_cast<std::uint8_t>(rng.below(256));
            gfsimd::mulConstAt(simd::Tier::Scalar, a, in.data(),
                               out_s.data(), len);
            gfsimd::mulConstAt(act, a, in.data(), out_v.data(), len);
            for (int i = 0; i < len; ++i) {
                ASSERT_EQ(out_s[i], GF256::mul(a, in[i]));
                ASSERT_EQ(out_v[i], out_s[i])
                    << "len=" << len << " i=" << i << " a=" << int(a);
            }
        }
    }
}

TEST(Gf256Simd, MulConstWorksInPlace)
{
    Rng rng(0x1717);
    std::vector<std::uint8_t> buf(100), expect(100);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(rng.below(256));
    for (std::size_t i = 0; i < buf.size(); ++i)
        expect[i] = GF256::mul(0x3b, buf[i]);
    gfsimd::mulConst(0x3b, buf.data(), buf.data(), buf.size());
    EXPECT_EQ(buf, expect);
}

TEST(Gf256Simd, SyndromeSoaMatchesPerWordSyndromesBothTiers)
{
    // Every lane of the SoA kernel must reproduce computeSyndromes on
    // the gathered word, on both the scalar and the active tier, for
    // every codec shape and a partial last block.
    const simd::Tier act = simd::activeTier();
    constexpr int kStride = RsWorkspace::kSoaLanes;
    struct Shape { int n, k; };
    for (const Shape shape : {Shape{18, 16}, Shape{36, 32},
                              Shape{72, 64}}) {
        ReedSolomon rs(shape.n, shape.k);
        const int rr = rs.r();
        Rng rng(0xba7c4 + shape.n);

        for (int lanes : {1, 5, 16, 17, 32}) {
            std::vector<std::uint8_t> soa(
                static_cast<std::size_t>(shape.n) * kStride);
            for (auto &b : soa)
                b = static_cast<std::uint8_t>(rng.below(256));

            std::vector<std::uint8_t> synd_s(
                static_cast<std::size_t>(rr) * kStride);
            std::vector<std::uint8_t> synd_v = synd_s;
            std::vector<std::uint8_t> flags_s(kStride), flags_v(kStride);

            std::vector<std::uint8_t> roots(rr);
            for (int j = 0; j < rr; ++j)
                roots[j] = GF256::alphaPow(j);
            gfsimd::syndromeSoaAt(simd::Tier::Scalar, soa.data(),
                                  kStride, shape.n, lanes, roots.data(),
                                  rr, synd_s.data(), flags_s.data());
            gfsimd::syndromeSoaAt(act, soa.data(), kStride, shape.n,
                                  lanes, roots.data(), rr,
                                  synd_v.data(), flags_v.data());

            std::vector<std::uint8_t> word(shape.n), synd(rr);
            for (int l = 0; l < lanes; ++l) {
                for (int i = 0; i < shape.n; ++i)
                    word[i] = soa[static_cast<std::size_t>(i) *
                                      kStride +
                                  l];
                rs.computeSyndromes(word, synd);
                std::uint8_t any = 0;
                for (int j = 0; j < rr; ++j) {
                    ASSERT_EQ(synd_s[static_cast<std::size_t>(j) *
                                         kStride +
                                     l],
                              synd[j])
                        << "scalar lane " << l << " synd " << j;
                    ASSERT_EQ(synd_v[static_cast<std::size_t>(j) *
                                         kStride +
                                     l],
                              synd[j])
                        << "vector lane " << l << " synd " << j;
                    any |= synd[j];
                }
                ASSERT_EQ(flags_s[l] != 0, any != 0);
                ASSERT_EQ(flags_v[l] != 0, any != 0);
            }
        }
    }
}

TEST(Gf256Simd, ChienScanMatchesScalarTierAndFindsTrueRoots)
{
    // Random locator polynomials with psi[0] = 1 (the decodeCore
    // shape): both tiers must report the same ascending positions,
    // each of which must be a genuine root of psi at the position's
    // evaluation point alpha^-(n-1-i).
    const simd::Tier act = simd::activeTier();
    Rng rng(0xc41e);
    for (int n : {18, 36, 72, 255}) {
        // Per-term lane/block step tables, as ReedSolomon builds them.
        std::vector<std::uint8_t> lane_step(
            static_cast<std::size_t>(256) * gfsimd::kLaneBlock);
        std::vector<std::uint8_t> block_step(256);
        for (int j = 0; j < 256; ++j) {
            for (int l = 0; l < gfsimd::kLaneBlock; ++l)
                lane_step[j * gfsimd::kLaneBlock + l] =
                    GF256::alphaPow(j * l);
            block_step[j] = GF256::alphaPow(gfsimd::kLaneBlock * j);
        }

        for (int it = 0; it < 300; ++it) {
            const int deg = static_cast<int>(rng.below(9));
            std::vector<std::uint8_t> psi(deg + 1);
            psi[0] = 1;
            for (int j = 1; j <= deg; ++j)
                psi[j] = static_cast<std::uint8_t>(rng.below(256));
            if (deg > 0 && psi[deg] == 0)
                psi[deg] = 1;

            std::vector<std::uint8_t> terms0(deg + 1);
            for (int j = 0; j <= deg; ++j)
                terms0[j] = GF256::mul(psi[j],
                                       GF256::alphaPow(-(j * (n - 1))));

            int pos_s[256], pos_v[256];
            const int found_s = gfsimd::chienScanAt(
                simd::Tier::Scalar, terms0.data(), deg + 1, n, deg,
                lane_step.data(), block_step.data(), pos_s);
            const int found_v = gfsimd::chienScanAt(
                act, terms0.data(), deg + 1, n, deg,
                lane_step.data(), block_step.data(), pos_v);

            ASSERT_EQ(found_s, found_v) << "n=" << n << " it=" << it;
            for (int i = 0; i < found_s; ++i) {
                ASSERT_EQ(pos_s[i], pos_v[i])
                    << "n=" << n << " it=" << it << " root " << i;
                if (i > 0) {
                    ASSERT_LT(pos_s[i - 1], pos_s[i]);
                }
                const std::uint8_t x =
                    GF256::alphaPow(-(n - 1 - pos_s[i]));
                ASSERT_EQ(gfpoly::eval(psi, x), 0)
                    << "reported non-root at " << pos_s[i];
            }
        }
    }
}

TEST(Gf256Simd, SoaScatterGatherAreInverses)
{
    Rng rng(0x50a);
    const int symbols = 36, lanes = 32;
    std::vector<std::uint8_t> words(
        static_cast<std::size_t>(lanes) * symbols);
    for (auto &b : words)
        b = static_cast<std::uint8_t>(rng.below(256));

    std::vector<std::uint8_t> soa(
        static_cast<std::size_t>(symbols) * RsWorkspace::kSoaLanes);
    gfsimd::soaScatter(words.data(), symbols, symbols, lanes,
                       soa.data(), RsWorkspace::kSoaLanes);
    // Spot the transposed identity, then invert.
    EXPECT_EQ(soa[5 * RsWorkspace::kSoaLanes + 7],
              words[7 * symbols + 5]);
    std::vector<std::uint8_t> back(words.size());
    gfsimd::soaGather(soa.data(), RsWorkspace::kSoaLanes, symbols,
                      lanes, back.data(), symbols);
    EXPECT_EQ(back, words);
}

} // namespace
} // namespace arcc
