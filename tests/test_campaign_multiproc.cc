/**
 * @file
 * Multi-process campaign scale-out tests: the WorkerPlan partition,
 * cross-worker digest equality against the pinned golden at every
 * worker and thread count, SIGKILL-one-worker resume-then-merge
 * equality, a merge-order/associativity property fuzz over random
 * contiguous trial-range splits, and the fatal paths that keep a
 * merge from ever silently folding the wrong fleet.
 *
 * The spec here is tests/test_determinism.cc's campaignSpec() -- same
 * fleet, same seed -- so the merged digests are pinned against the
 * same golden 0xa0c045902c858d77 CI greps from the smoke runs.
 *
 * Every engine in this file is a small *local* engine except the one
 * global-engine golden test kept last: the SIGKILL test fork()s, and
 * a forked child must never inherit a half-locked thread pool.
 * Death-test suites are named *DeathTest so gtest runs them first.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/campaign.hh"
#include "campaign/checkpoint.hh"
#include "engine/sim_engine.hh"

namespace arcc
{
namespace
{

/** The golden campaign digest for multiprocSpec(), pinned by
 *  CampaignDeterminism.GoldenDigestOnTheGlobalEngine. */
constexpr std::uint64_t kGoldenDigest = 0xa0c045902c858d77ULL;

std::string
tempPath(const std::string &tag)
{
    return (std::filesystem::temp_directory_path() /
            ("arcc_test_multiproc." + tag + "." +
             std::to_string(::getpid())))
        .string();
}

/** Removes a worker-log fleet (base.w0, base.w1, ...) on teardown. */
struct TempFleet
{
    explicit TempFleet(std::string b) : base(std::move(b)) {}
    ~TempFleet()
    {
        for (std::uint32_t id = 0; id < 64; ++id)
            std::remove(workerCheckpointPath(base, id).c_str());
    }
    std::string base;
};

/** Same fleet as test_determinism.cc's campaignSpec(). */
CampaignSpec
multiprocSpec()
{
    CampaignSpec spec;
    spec.channels = 2048;
    spec.epochTrials = 256;
    spec.shardTrials = 64;
    spec.seed = 20130223;
    return spec;
}

/** Build worker `id`'s slice in-process on `engine`. */
CampaignWorkerSlice
runSlice(const CampaignSpec &spec, const WorkerPlan &plan,
         std::uint32_t id, SimEngine &engine)
{
    CampaignDriver driver(spec, &engine);
    return workerSlice(spec, plan, id, driver.runWorker(plan, id));
}

/** A hand-built slice over an arbitrary contiguous range, for the
 *  merge fuzz (ranges there are not WorkerPlan ranges). */
CampaignWorkerSlice
madeSlice(const CampaignSpec &spec, const CampaignDriver &driver,
          std::uint32_t id, std::uint32_t count, std::uint64_t begin,
          std::uint64_t end)
{
    CampaignWorkerSlice s;
    s.workerId = id;
    s.workerCount = count;
    s.beginTrial = begin;
    s.endTrial = end;
    s.configHash = spec.configHash();
    s.seed = spec.seed;
    s.aggregate = driver.runTrials(begin, end);
    s.source = "slice#" + std::to_string(id);
    return s;
}

/** Deterministic 64-bit generator for the fuzz (splitmix64). */
struct FuzzRng
{
    std::uint64_t state;
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// --- fatal paths first (death-test suites run before the rest) ---------

TEST(WorkerPlanDeathTest, ZeroWorkersAndBadIdsAreFatal)
{
    const CampaignSpec spec = multiprocSpec();
    EXPECT_EXIT(WorkerPlan(spec, 0), ::testing::ExitedWithCode(1),
                "zero workers");
    const WorkerPlan plan(spec, 4);
    EXPECT_EXIT(plan.range(4), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(MergeDeathTest, EmptySliceListIsFatal)
{
    const CampaignSpec spec = multiprocSpec();
    EXPECT_EXIT(mergeCampaigns(spec, {}),
                ::testing::ExitedWithCode(1), "no worker slices");
}

TEST(MergeDeathTest, DuplicateWorkerIdsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    const CampaignSpec spec = multiprocSpec();
    const WorkerPlan plan(spec, 2);
    std::vector<CampaignWorkerSlice> slices = {
        runSlice(spec, plan, 0, engine),
        runSlice(spec, plan, 0, engine)};
    EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                ::testing::ExitedWithCode(1), "duplicate worker id");
}

TEST(MergeDeathTest, CoverageGapsAndOverlapsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    const CampaignSpec spec = multiprocSpec();
    CampaignDriver driver(spec, &engine);
    const std::uint64_t n = spec.channels;

    {
        // Gap: [0, 512) + [1024, 2048) misses [512, 1024).
        std::vector<CampaignWorkerSlice> slices = {
            madeSlice(spec, driver, 0, 2, 0, 512),
            madeSlice(spec, driver, 1, 2, 1024, n)};
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1), "gap in trial");
    }
    {
        // Overlap: [0, 1024) + [512, 2048) double-counts [512, 1024).
        std::vector<CampaignWorkerSlice> slices = {
            madeSlice(spec, driver, 0, 2, 0, 1024),
            madeSlice(spec, driver, 1, 2, 512, n)};
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1), "overlapping");
    }
    {
        // Short fleet: coverage ends before spec.channels.
        std::vector<CampaignWorkerSlice> slices = {
            madeSlice(spec, driver, 0, 1, 0, 1024)};
        slices[0].endTrial = 1024;
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1), "incomplete fleet");
    }
}

TEST(MergeDeathTest, MixedExperimentsAndFleetsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    const CampaignSpec spec = multiprocSpec();
    const WorkerPlan plan(spec, 2);

    {
        // Stale configHash: slice from a different experiment.
        std::vector<CampaignWorkerSlice> slices = {
            runSlice(spec, plan, 0, engine),
            runSlice(spec, plan, 1, engine)};
        slices[1].configHash ^= 1;
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1), "stale or mixed");
    }
    {
        // Mixed fleet: a 3-worker slice offered to a 2-slice merge.
        std::vector<CampaignWorkerSlice> slices = {
            runSlice(spec, plan, 0, engine),
            runSlice(spec, plan, 1, engine)};
        slices[1].workerCount = 3;
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1),
                    "partial or mixed fleet");
    }
    {
        // Aggregate that does not cover its claimed range.
        std::vector<CampaignWorkerSlice> slices = {
            runSlice(spec, plan, 0, engine),
            runSlice(spec, plan, 1, engine)};
        slices[1].aggregate.trials -= 1;
        EXPECT_EXIT(mergeCampaigns(spec, std::move(slices)),
                    ::testing::ExitedWithCode(1),
                    "incomplete worker");
    }
}

TEST(LoadSliceDeathTest, MissingSwappedAndUnfinishedLogsAreFatal)
{
    SimEngine engine(SimEngine::Options{1});
    const CampaignSpec spec = multiprocSpec();
    const WorkerPlan plan(spec, 2);
    TempFleet fleet(tempPath("load"));

    // No log at all: the worker never ran.
    EXPECT_EXIT(loadWorkerSlice(workerCheckpointPath(fleet.base, 0),
                                spec, plan, 0),
                ::testing::ExitedWithCode(1), "run the worker");

    CampaignDriver driver(spec, &engine);
    CampaignRunOptions o0;
    o0.checkpointPath = workerCheckpointPath(fleet.base, 0);
    driver.runWorker(plan, 0, o0);

    // Swapped logs: worker 0's file offered as worker 1's.
    EXPECT_EXIT(loadWorkerSlice(o0.checkpointPath, spec, plan, 1),
                ::testing::ExitedWithCode(1),
                "worker stamp mismatch");

    // Unfinished worker: interrupted after one epoch, then merged.
    CampaignRunOptions o1;
    o1.checkpointPath = workerCheckpointPath(fleet.base, 1);
    o1.maxEpochs = 1;
    CampaignRunResult partial = driver.runWorker(plan, 1, o1);
    ASSERT_TRUE(partial.interrupted);
    EXPECT_EXIT(loadWorkerSlice(o1.checkpointPath, spec, plan, 1),
                ::testing::ExitedWithCode(1),
                "resume the worker to completion");
}

// --- the partition ------------------------------------------------------

TEST(WorkerPlan, SplitsAreContiguousBalancedAndExhaustive)
{
    const CampaignSpec spec = multiprocSpec();
    for (std::uint32_t workers : {1u, 2u, 3u, 4u, 7u, 64u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        const WorkerPlan plan(spec, workers);
        std::uint64_t cursor = 0;
        const std::uint64_t lo = spec.channels / workers;
        for (std::uint32_t id = 0; id < workers; ++id) {
            const WorkerRange r = plan.range(id);
            EXPECT_EQ(r.begin, cursor); // contiguous, in id order
            EXPECT_GE(r.trials(), lo);  // balanced to within one
            EXPECT_LE(r.trials(), lo + 1);
            cursor = r.end;
        }
        EXPECT_EQ(cursor, spec.channels); // exhaustive
    }
}

TEST(WorkerPlan, MoreWorkersThanTrialsYieldsEmptyTrailingRanges)
{
    CampaignSpec spec = multiprocSpec();
    spec.channels = 3;
    const WorkerPlan plan(spec, 5);
    EXPECT_EQ(plan.range(0).trials(), 1u);
    EXPECT_EQ(plan.range(2).trials(), 1u);
    EXPECT_TRUE(plan.range(3).empty());
    EXPECT_TRUE(plan.range(4).empty());
    EXPECT_EQ(plan.range(4).begin, 3u);
}

// --- cross-worker digest equality --------------------------------------

TEST(CampaignMultiproc, MergedDigestMatchesGoldenAtEveryWorkerCount)
{
    // The tentpole invariant: N workers, any thread count, merged in
    // worker order == the single-process golden, bit for bit.
    const CampaignSpec spec = multiprocSpec();
    for (std::uint32_t workers : {1u, 2u, 4u, 7u}) {
        for (int threads : {1, 2, 7}) {
            SCOPED_TRACE("workers=" + std::to_string(workers) +
                         " threads=" + std::to_string(threads));
            SimEngine engine(SimEngine::Options{threads});
            const WorkerPlan plan(spec, workers);
            std::vector<CampaignWorkerSlice> slices;
            for (std::uint32_t id = 0; id < workers; ++id)
                slices.push_back(runSlice(spec, plan, id, engine));
            const CampaignRunResult merged =
                mergeCampaigns(spec, std::move(slices));
            EXPECT_EQ(merged.aggregate.trials, spec.channels);
            EXPECT_EQ(merged.digest(spec), kGoldenDigest);
        }
    }
}

TEST(CampaignMultiproc, WorkerCheckpointResumeThenMergeMatchesGolden)
{
    // Interrupt every worker after one epoch, resume each from its
    // stamped log, load the finished slices from disk, merge.
    const CampaignSpec spec = multiprocSpec();
    SimEngine engine(SimEngine::Options{2});
    CampaignDriver driver(spec, &engine);
    const WorkerPlan plan(spec, 4);
    TempFleet fleet(tempPath("resume"));

    for (std::uint32_t id = 0; id < plan.workers(); ++id) {
        CampaignRunOptions head;
        head.checkpointPath = workerCheckpointPath(fleet.base, id);
        head.maxEpochs = 1;
        CampaignRunResult first = driver.runWorker(plan, id, head);
        ASSERT_TRUE(first.interrupted);

        CampaignRunOptions tail;
        tail.checkpointPath = head.checkpointPath;
        CampaignRunResult rest = driver.runWorker(plan, id, tail);
        EXPECT_FALSE(rest.interrupted);
        EXPECT_GT(rest.resumedFromTrial, plan.range(id).begin);
    }

    std::vector<CampaignWorkerSlice> slices;
    for (std::uint32_t id = 0; id < plan.workers(); ++id)
        slices.push_back(loadWorkerSlice(
            workerCheckpointPath(fleet.base, id), spec, plan, id));
    const CampaignRunResult merged =
        mergeCampaigns(spec, std::move(slices));
    EXPECT_EQ(merged.digest(spec), kGoldenDigest);
}

TEST(CampaignMultiproc, SigkilledWorkerResumesAndMergeMatchesGolden)
{
    // The real thing: fork one child per worker, SIGKILL one of them
    // mid-epoch (possibly mid-append), resume the casualty in this
    // process, merge from the logs.  1-thread engines keep the
    // fork() clean of pool threads.
    const CampaignSpec spec = multiprocSpec();
    const WorkerPlan plan(spec, 4);
    constexpr std::uint32_t kVictim = 1;
    TempFleet fleet(tempPath("sigkill"));

    std::vector<pid_t> pids(plan.workers(), -1);
    for (std::uint32_t id = 0; id < plan.workers(); ++id) {
        const pid_t pid = ::fork();
        ASSERT_NE(pid, -1);
        if (pid == 0) {
            SimEngine child_engine(SimEngine::Options{1});
            CampaignDriver child(spec, &child_engine);
            CampaignRunOptions o;
            o.checkpointPath =
                workerCheckpointPath(fleet.base, id);
            child.runWorker(plan, id, o);
            ::_exit(0);
        }
        pids[id] = pid;
    }

    // Kill the victim once its log outgrows the header: at least one
    // epoch record is then sealed or mid-append (the torn-tail case
    // recovery must absorb).  If it finishes first, resume-from-
    // complete is equality too.
    const std::string victim_log =
        workerCheckpointPath(fleet.base, kVictim);
    const std::size_t kill_after =
        kFrameOverheadBytes + kHeaderPayloadBytes + 1;
    bool reaped = false;
    for (int spin = 0; spin < 20000; ++spin) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(victim_log, ec);
        if (!ec && size >= kill_after)
            break;
        int status = 0;
        if (::waitpid(pids[kVictim], &status, WNOHANG) ==
            pids[kVictim]) {
            reaped = true;
            break;
        }
        ::usleep(100);
    }
    if (!reaped) {
        ::kill(pids[kVictim], SIGKILL);
        int status = 0;
        ASSERT_EQ(::waitpid(pids[kVictim], &status, 0), pids[kVictim]);
    }
    for (std::uint32_t id = 0; id < plan.workers(); ++id) {
        if (id == kVictim)
            continue;
        int status = 0;
        ASSERT_EQ(::waitpid(pids[id], &status, 0), pids[id]);
        ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // Resume the casualty in-process, then merge the whole fleet.
    SimEngine engine(SimEngine::Options{1});
    CampaignDriver driver(spec, &engine);
    CampaignRunOptions resume;
    resume.checkpointPath = victim_log;
    CampaignRunResult resumed =
        driver.runWorker(plan, kVictim, resume);
    EXPECT_FALSE(resumed.interrupted);

    std::vector<CampaignWorkerSlice> slices;
    for (std::uint32_t id = 0; id < plan.workers(); ++id)
        slices.push_back(loadWorkerSlice(
            workerCheckpointPath(fleet.base, id), spec, plan, id));
    const CampaignRunResult merged =
        mergeCampaigns(spec, std::move(slices));
    EXPECT_EQ(merged.digest(spec), kGoldenDigest);
}

// --- merge-order / associativity property fuzz -------------------------

TEST(CampaignMultiproc, RandomSplitsFoldToTheUnsplitBytes)
{
    // Property: ANY contiguous split of the trial space -- not just
    // WorkerPlan's balanced one, and including empty ranges -- folds
    // in worker order to the unsplit aggregate's exact serialized
    // bytes.  This is the dyadic-rational exactness argument from
    // campaign.hh, pinned to the byte.
    CampaignSpec spec = multiprocSpec();
    spec.channels = 640; // smaller fleet: many random splits, fast
    SimEngine engine(SimEngine::Options{2});
    CampaignDriver driver(spec, &engine);

    const CampaignAggregate whole =
        driver.runTrials(0, spec.channels);
    std::vector<std::uint8_t> whole_bytes;
    whole.serializeTo(whole_bytes);

    const std::uint64_t fuzz_seed = 0x4a69616e4b313321ULL;
    std::printf("[ fuzz ] seed %016llx\n",
                static_cast<unsigned long long>(fuzz_seed));
    FuzzRng rng{fuzz_seed};

    for (int round = 0; round < 12; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        // 1..9 cut points, duplicates allowed => empty ranges.
        const std::uint32_t cuts =
            1 + static_cast<std::uint32_t>(rng.below(9));
        std::vector<std::uint64_t> bounds = {0, spec.channels};
        for (std::uint32_t c = 0; c < cuts; ++c)
            bounds.push_back(rng.below(spec.channels + 1));
        std::sort(bounds.begin(), bounds.end());

        std::vector<CampaignWorkerSlice> slices;
        const auto count =
            static_cast<std::uint32_t>(bounds.size() - 1);
        for (std::uint32_t id = 0; id < count; ++id)
            slices.push_back(madeSlice(spec, driver, id, count,
                                       bounds[id], bounds[id + 1]));
        const CampaignRunResult merged =
            mergeCampaigns(spec, std::move(slices));

        // Byte-exact: the merged aggregate serializes identically.
        std::vector<std::uint8_t> merged_bytes;
        merged.aggregate.serializeTo(merged_bytes);
        EXPECT_EQ(merged_bytes, whole_bytes);

        // And the observable endpoints agree exactly too.
        const StreamingHistogram &a = merged.aggregate.affectedHist;
        const StreamingHistogram &b = whole.affectedHist;
        EXPECT_EQ(a.min(), b.min());
        EXPECT_EQ(a.max(), b.max());
        EXPECT_EQ(a.sum(), b.sum());
        EXPECT_EQ(a.quantile(0.0), b.quantile(0.0));
        EXPECT_EQ(a.quantile(0.5), b.quantile(0.5));
        EXPECT_EQ(a.quantile(0.99), b.quantile(0.99));
        EXPECT_EQ(a.quantile(1.0), b.quantile(1.0));
        EXPECT_EQ(merged.aggregate.affectedSum, whole.affectedSum);
        EXPECT_EQ(merged.aggregate.hash(), whole.hash());
    }
}

// --- global-engine golden (kept last: it sizes the global pool) --------

TEST(CampaignMultiprocGolden, MergedDigestOnTheGlobalEngine)
{
    // CI runs this at ARCC_THREADS=1 and 4; both must reproduce the
    // same golden the single-process global-engine test pins.
    const CampaignSpec spec = multiprocSpec();
    const WorkerPlan plan(spec, 4);
    CampaignDriver driver(spec);
    std::vector<CampaignWorkerSlice> slices;
    for (std::uint32_t id = 0; id < plan.workers(); ++id)
        slices.push_back(
            workerSlice(spec, plan, id, driver.runWorker(plan, id)));
    const CampaignRunResult merged =
        mergeCampaigns(spec, std::move(slices));
    EXPECT_EQ(merged.digest(spec), kGoldenDigest);
}

} // namespace
} // namespace arcc
