/**
 * @file
 * Tests for the checked flag / environment parsers -- the fix for the
 * silent-zero input-parsing holes.
 *
 * Every death test here is a CLI regression: the exact flag text that
 * the old strtoull / atoi / atof parsing silently coerced to 0 (or
 * wrapped to 2^64-1), checked to now fail loudly, naming the flag and
 * the offending text.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/parse_num.hh"

namespace arcc
{
namespace
{

// --- the happy paths ---------------------------------------------------

TEST(ParseNum, AcceptsWellFormedIntegers)
{
    EXPECT_EQ(parseU64("--channels", "16384"), 16384u);
    EXPECT_EQ(parseU64("--seed", "18446744073709551615"),
              ~std::uint64_t{0});
    EXPECT_EQ(parseI64("--worker-id", "-3"), -3);
    EXPECT_EQ(parseU32("--workers", "4"), 4u);
    EXPECT_EQ(parseInt("--group-devices", "18"), 18);
    EXPECT_EQ(parseInt("channels", "0"), 0);
}

TEST(ParseNum, AcceptsWellFormedDoubles)
{
    EXPECT_DOUBLE_EQ(parseDouble("--years", "5"), 5.0);
    EXPECT_DOUBLE_EQ(parseDouble("--boost", "100.5"), 100.5);
    EXPECT_DOUBLE_EQ(parseDouble("--fraction", "0.25"), 0.25);
    EXPECT_DOUBLE_EQ(parseDouble("rate_factor", "1e2"), 100.0);
    EXPECT_DOUBLE_EQ(parseDouble("--years", "-2.5"), -2.5);
}

// --- arcc_campaign's flags ---------------------------------------------

TEST(ParseNumDeath, CampaignChannelsGarbageIsFatal)
{
    // Old behaviour: strtoull("junk") == 0 => a 0-channel campaign.
    EXPECT_DEATH(parseU64("--channels", "junk"),
                 "--channels.*unsigned integer.*junk");
}

TEST(ParseNumDeath, CampaignChannelsTrailingGarbageIsFatal)
{
    // Old behaviour: strtoull("16k") == 16.
    EXPECT_DEATH(parseU64("--channels", "16k"),
                 "--channels.*unsigned integer.*16k");
}

TEST(ParseNumDeath, CampaignSeedNegativeWrapsNoMore)
{
    // Old behaviour: strtoull("-1") wrapped to 2^64-1.
    EXPECT_DEATH(parseU64("--seed", "-1"),
                 "--seed.*negative value");
}

TEST(ParseNumDeath, CampaignEpochTrialsEmptyIsFatal)
{
    EXPECT_DEATH(parseU64("--epoch-trials", ""),
                 "--epoch-trials.*empty string");
}

TEST(ParseNumDeath, CampaignGroupDevicesGarbageIsFatal)
{
    // Old behaviour: atoi("all") == 0 => division by zero downstream.
    EXPECT_DEATH(parseInt("--group-devices", "all"),
                 "--group-devices.*integer.*all");
}

TEST(ParseNumDeath, CampaignWorkersOutOfRangeIsFatal)
{
    EXPECT_DEATH(parseU32("--workers", "4294967296"),
                 "--workers.*out of range");
}

TEST(ParseNumDeath, CampaignYearsGarbageIsFatal)
{
    // Old behaviour: atof("five") == 0.0 => usage trap at best.
    EXPECT_DEATH(parseDouble("--years", "five"),
                 "--years.*number.*five");
}

TEST(ParseNumDeath, CampaignBoostPartialParseIsFatal)
{
    // Old behaviour: atof("100x") == 100.0, the typo vanished.
    EXPECT_DEATH(parseDouble("--boost", "100x"),
                 "--boost.*number.*100x");
}

// --- arcc_sim's flags --------------------------------------------------

TEST(ParseNumDeath, SimInstrsScientificNotationIsFatal)
{
    // Old behaviour: strtoull("2e6") == 2 -- a two-instruction run.
    EXPECT_DEATH(parseU64("--instrs", "2e6"),
                 "--instrs.*unsigned integer.*2e6");
}

TEST(ParseNumDeath, SimFractionGarbageIsFatal)
{
    EXPECT_DEATH(parseDouble("--fraction", "half"),
                 "--fraction.*number.*half");
}

// --- lifetime_fleet's positionals --------------------------------------

TEST(ParseNumDeath, FleetYearsGarbageIsFatal)
{
    EXPECT_DEATH(parseDouble("years", "7yrs"), "years.*number.*7yrs");
}

TEST(ParseNumDeath, FleetChannelsGarbageIsFatal)
{
    EXPECT_DEATH(parseInt("channels", "10_000"),
                 "channels.*integer.*10_000");
}

// --- strictness details -------------------------------------------------

TEST(ParseNumDeath, LeadingWhitespaceIsFatal)
{
    EXPECT_DEATH(parseU64("--channels", " 5"), "--channels");
    EXPECT_DEATH(parseDouble("--years", " 5"), "--years");
}

TEST(ParseNumDeath, PlusPrefixIsFatal)
{
    EXPECT_DEATH(parseU64("--channels", "+5"), "--channels");
    EXPECT_DEATH(parseDouble("--years", "+5"), "--years");
}

TEST(ParseNumDeath, DoubleOverflowIsFatal)
{
    EXPECT_DEATH(parseDouble("--boost", "1e999"),
                 "--boost.*out of range");
}

TEST(ParseNumDeath, IntRangeIsChecked)
{
    EXPECT_DEATH(parseInt("--group-devices", "2147483648"),
                 "--group-devices.*out of range");
}

// --- environment variables ---------------------------------------------

TEST(ParseNumEnv, UnsetAndEmptyUseTheFallback)
{
    ::unsetenv("ARCC_TEST_PARSE_ENV");
    EXPECT_EQ(envU64("ARCC_TEST_PARSE_ENV", 123), 123u);
    ::setenv("ARCC_TEST_PARSE_ENV", "", 1);
    EXPECT_EQ(envU64("ARCC_TEST_PARSE_ENV", 123), 123u);
    ::unsetenv("ARCC_TEST_PARSE_ENV");
}

TEST(ParseNumEnv, SetValueWins)
{
    ::setenv("ARCC_TEST_PARSE_ENV", "777", 1);
    EXPECT_EQ(envU64("ARCC_TEST_PARSE_ENV", 123), 777u);
    ::unsetenv("ARCC_TEST_PARSE_ENV");
}

TEST(ParseNumEnvDeath, BenchInstrsGarbageIsFatal)
{
    // Old behaviour: ARCC_BENCH_INSTRS=1m ran a 1-instruction bench
    // whose rows looked plausible.
    ::setenv("ARCC_BENCH_INSTRS", "1m", 1);
    EXPECT_DEATH(envU64("ARCC_BENCH_INSTRS", 1'000'000),
                 "ARCC_BENCH_INSTRS.*unsigned integer.*1m");
    ::unsetenv("ARCC_BENCH_INSTRS");
}

} // namespace
} // namespace arcc
