/**
 * @file
 * System-simulator tests: the fault-free ARCC vs baseline deltas and
 * the upgraded-page effects that drive Figures 7.1-7.3.
 */

#include <gtest/gtest.h>

#include "cpu/system_sim.hh"

namespace arcc
{
namespace
{

SystemConfig
quickConfig(const MemoryConfig &mem)
{
    SystemConfig cfg;
    cfg.mem = mem;
    cfg.instrsPerCore = 300'000;
    cfg.seed = 11;
    return cfg;
}

TEST(PageUpgradeOracle, ScenarioFractionsMatchTable74)
{
    MemoryConfig cfg = arccConfig();
    using S = PageUpgradeOracle::Scenario;
    EXPECT_DOUBLE_EQ(
        PageUpgradeOracle::forScenario(S::Lane, cfg).expectedFraction(),
        1.0);
    EXPECT_DOUBLE_EQ(PageUpgradeOracle::forScenario(S::Device, cfg)
                         .expectedFraction(),
                     0.5);
    EXPECT_DOUBLE_EQ(
        PageUpgradeOracle::forScenario(S::Bank, cfg).expectedFraction(),
        1.0 / 16);
    EXPECT_DOUBLE_EQ(PageUpgradeOracle::forScenario(S::Column, cfg)
                         .expectedFraction(),
                     1.0 / 32);
}

TEST(PageUpgradeOracle, DecisionsArePageGranular)
{
    MemoryConfig cfg = arccConfig();
    auto oracle = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Column, cfg);
    Rng rng(1);
    AddressMap map(cfg);
    for (int t = 0; t < 300; ++t) {
        std::uint64_t page = rng.below(map.capacity() / kPageBytes);
        bool first = oracle.upgraded(page * kPageBytes);
        for (int l = 1; l < 64; l += 7) {
            EXPECT_EQ(oracle.upgraded(page * kPageBytes +
                                      l * kLineBytes),
                      first);
        }
    }
}

TEST(PageUpgradeOracle, StructuredFractionsMatchMeasured)
{
    MemoryConfig cfg = arccConfig();
    AddressMap map(cfg);
    Rng rng(2);
    for (auto s : {PageUpgradeOracle::Scenario::Device,
                   PageUpgradeOracle::Scenario::Bank,
                   PageUpgradeOracle::Scenario::Column}) {
        auto oracle = PageUpgradeOracle::forScenario(s, cfg);
        int upgraded = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            std::uint64_t page = rng.below(map.capacity() / kPageBytes);
            upgraded += oracle.upgraded(page * kPageBytes);
        }
        EXPECT_NEAR(static_cast<double>(upgraded) / n,
                    oracle.expectedFraction(),
                    0.01)
            << PageUpgradeOracle::name(s);
    }
}

TEST(PageUpgradeOracle, FractionOracleHitsItsTarget)
{
    MemoryConfig cfg = arccConfig();
    auto oracle = PageUpgradeOracle::forFraction(0.2, cfg);
    Rng rng(3);
    int upgraded = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        upgraded += oracle.upgraded(rng.below(1ULL << 32));
    EXPECT_NEAR(static_cast<double>(upgraded) / n, 0.2, 0.01);
}

TEST(SystemSim, RunsAllCoresToCompletion)
{
    SystemConfig cfg = quickConfig(arccConfig());
    SimResult res = simulateMix(table73Mixes()[0], cfg, {});
    ASSERT_EQ(res.cores.size(), 4u);
    for (const auto &c : res.cores) {
        EXPECT_GE(c.instrs, cfg.instrsPerCore);
        EXPECT_GT(c.ipc, 0.0);
        EXPECT_LE(c.ipc, 2.0);
    }
    EXPECT_GT(res.ipcSum, 0.0);
    EXPECT_GT(res.avgPowerMw, 0.0);
    EXPECT_GT(res.memReads, 0u);
}

TEST(SystemSim, ArccBeatsBaselinePowerFaultFree)
{
    // The headline of Figure 7.1: ~36% lower memory power with no
    // faults.  Assert a healthy band rather than the point estimate.
    SimResult base = simulateMix(table73Mixes()[1],
                                 quickConfig(baselineConfig()), {});
    SimResult ar =
        simulateMix(table73Mixes()[1], quickConfig(arccConfig()), {});
    double saving = 1.0 - ar.avgPowerMw / base.avgPowerMw;
    EXPECT_GT(saving, 0.20);
    EXPECT_LT(saving, 0.55);
}

TEST(SystemSim, ArccPerformanceIsNotWorseFaultFree)
{
    SimResult base = simulateMix(table73Mixes()[6],
                                 quickConfig(baselineConfig()), {});
    SimResult ar =
        simulateMix(table73Mixes()[6], quickConfig(arccConfig()), {});
    EXPECT_GT(ar.ipcSum, base.ipcSum * 0.98)
        << "twice the ranks should not hurt performance";
}

TEST(SystemSim, UpgradedPagesRaisePower)
{
    SystemConfig cfg = quickConfig(arccConfig());
    SimResult clean = simulateMix(table73Mixes()[1], cfg, {});
    auto lane = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Lane, cfg.mem);
    SimResult faulty = simulateMix(table73Mixes()[1], cfg, lane);
    EXPECT_GT(faulty.avgPowerMw, clean.avgPowerMw * 1.02);
    // Worst case bound: a lane fault cannot more than double power.
    EXPECT_LT(faulty.avgPowerMw, clean.avgPowerMw * 2.05);
}

TEST(SystemSim, SmallerFaultsCostLessPower)
{
    SystemConfig cfg = quickConfig(arccConfig());
    using S = PageUpgradeOracle::Scenario;
    SimResult lane = simulateMix(
        table73Mixes()[4], cfg,
        PageUpgradeOracle::forScenario(S::Lane, cfg.mem));
    SimResult column = simulateMix(
        table73Mixes()[4], cfg,
        PageUpgradeOracle::forScenario(S::Column, cfg.mem));
    EXPECT_LT(column.avgPowerMw, lane.avgPowerMw);
}

TEST(SystemSim, SpatialWorkloadsKeepPrefetchBenefit)
{
    // A lane fault upgrades everything: every miss fetches 128B.  For
    // a high-spatial-locality mix the sibling line is useful, so the
    // LLC miss count must drop relative to the clean run.
    SystemConfig cfg = quickConfig(arccConfig());
    WorkloadMix streaming{"stream", {"libquantum", "swim", "leslie3d",
                                     "lbm"}};
    SimResult clean = simulateMix(streaming, cfg, {});
    auto lane = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Lane, cfg.mem);
    SimResult faulty = simulateMix(streaming, cfg, lane);
    double clean_mr = clean.llcStats.missRate();
    double faulty_mr = faulty.llcStats.missRate();
    EXPECT_LT(faulty_mr, clean_mr * 0.85)
        << "the paired fill must act as a prefetch";
}

TEST(SystemSim, ResultsAreDeterministic)
{
    SystemConfig cfg = quickConfig(arccConfig());
    cfg.instrsPerCore = 100'000;
    SimResult a = simulateMix(table73Mixes()[2], cfg, {});
    SimResult b = simulateMix(table73Mixes()[2], cfg, {});
    EXPECT_DOUBLE_EQ(a.ipcSum, b.ipcSum);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
}

TEST(SystemSim, SectoredLlcAlsoRuns)
{
    SystemConfig cfg = quickConfig(arccConfig());
    cfg.sectoredLlc = true;
    cfg.instrsPerCore = 100'000;
    SimResult res = simulateMix(table73Mixes()[0], cfg, {});
    EXPECT_GT(res.ipcSum, 0.0);
}

TEST(SystemSim, CoreCountIsConfigurable)
{
    // The model historically hard-wired 4 cores; any count works now.
    for (int n : {1, 2, 6}) {
        SystemConfig cfg = quickConfig(arccConfig());
        cfg.cores = n;
        cfg.instrsPerCore = 50'000;
        WorkloadMix mix{"custom", {}};
        for (int i = 0; i < n; ++i)
            mix.benchmarks.push_back(i % 2 ? "milc" : "mcf2006");
        SimResult res = simulateMix(mix, cfg, {});
        ASSERT_EQ(res.cores.size(), static_cast<std::size_t>(n));
        for (const auto &c : res.cores) {
            EXPECT_GE(c.instrs, cfg.instrsPerCore);
            EXPECT_GT(c.ipc, 0.0);
        }
    }
}

TEST(SystemSimDeathTest, StreamCountMustMatchConfiguredCores)
{
    SystemConfig cfg = quickConfig(arccConfig()); // cores = 4
    std::vector<StreamSpec> streams(3);
    for (auto &s : streams) {
        s.next = [] { return CoreWorkload::Access{0, false, 100}; };
        s.baseIpc = 1.0;
    }
    EXPECT_DEATH(simulateStreams(std::move(streams), cfg, {}),
                 "config.cores");
}

TEST(SystemSim, BackgroundScrubCostsIpcAndShowsUpInTraffic)
{
    // Interleaved scrubbing must compete with demand traffic: with
    // the sweep period compressed so many visits land inside the run
    // window, reported IPC drops and the scrub counters show the
    // absorbed accesses (3 reads + 3 writes per line visit).
    SystemConfig cfg = quickConfig(arccConfig());
    cfg.instrsPerCore = 150'000;
    SimResult clean = simulateMix(table73Mixes()[8], cfg, {});

    cfg.backgroundScrub.enabled = true;
    cfg.backgroundScrub.periodHours = 0.02;
    SimResult scrubbed = simulateMix(table73Mixes()[8], cfg, {});

    EXPECT_GT(scrubbed.scrubReads, 0u);
    EXPECT_EQ(scrubbed.scrubReads, scrubbed.scrubWrites);
    EXPECT_EQ(clean.scrubReads, 0u);
    EXPECT_LT(scrubbed.ipcSum, clean.ipcSum);

    // Halving the period roughly doubles the injected traffic.
    cfg.backgroundScrub.periodHours = 0.01;
    SimResult faster = simulateMix(table73Mixes()[8], cfg, {});
    EXPECT_GT(faster.scrubReads, scrubbed.scrubReads * 3 / 2);
    EXPECT_LT(faster.ipcSum, clean.ipcSum);
}

TEST(SystemSim, PlainScrubSkipsTestPatternPasses)
{
    // testPatterns=false is the conventional read+restore scrubber:
    // 2 accesses per line visit instead of 6, so a third the traffic.
    SystemConfig cfg = quickConfig(arccConfig());
    cfg.instrsPerCore = 100'000;
    cfg.backgroundScrub.enabled = true;
    cfg.backgroundScrub.periodHours = 0.02;
    SimResult patterns = simulateMix(table73Mixes()[8], cfg, {});
    cfg.backgroundScrub.testPatterns = false;
    SimResult plain = simulateMix(table73Mixes()[8], cfg, {});
    std::uint64_t pat =
        patterns.scrubReads + patterns.scrubWrites;
    std::uint64_t pl = plain.scrubReads + plain.scrubWrites;
    EXPECT_NEAR(static_cast<double>(pl) / pat, 1.0 / 3.0, 0.05);
}

TEST(SystemSim, PairingPolicyPointerIsNotSlower)
{
    SystemConfig fifo = quickConfig(arccConfig());
    fifo.ctrl.pairing = PairingPolicy::FifoPartition;
    fifo.instrsPerCore = 150'000;
    SystemConfig ptr = fifo;
    ptr.ctrl.pairing = PairingPolicy::Pointer;
    auto lane = PageUpgradeOracle::forScenario(
        PageUpgradeOracle::Scenario::Lane, fifo.mem);
    SimResult rf = simulateMix(table73Mixes()[9], fifo, lane);
    SimResult rp = simulateMix(table73Mixes()[9], ptr, lane);
    EXPECT_GE(rp.ipcSum, rf.ipcSum * 0.98);
}

} // namespace
} // namespace arcc
