/**
 * @file
 * Determinism tests for the arccd service: the response body of every
 * request is a pure function of its canonical form -- independent of
 * the engine's thread count, the cache state, the number of service
 * workers, and the order requests arrive in.
 *
 * The engine already promises bit-identical simulation at any thread
 * count; this suite checks the service stack *preserves* that promise
 * end to end (no timestamps, no thread counts, no cached-flags leaking
 * into bodies), using the same standardServiceRequests() set that
 * arcc_load and bench_service drive.  CI runs the "determinism" ctest
 * label under ARCC_THREADS=1 and 4 on top of the 1/2/7-thread engines
 * built here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/sim_engine.hh"
#include "service/request.hh"
#include "service/sim_service.hh"

namespace arcc
{
namespace
{

/** The shared request set, scaled down so the suite stays quick. */
std::vector<std::string>
requestLines()
{
    std::vector<std::string> lines;
    for (const ServiceRequest &req :
         standardServiceRequests(/*instrs=*/20000,
                                 /*campaignChannels=*/32))
        lines.push_back(req.canonical());
    return lines;
}

/** Evaluate every line on a fresh service over `threads` engine
 *  executors and return the response bodies in request order. */
std::vector<std::string>
evaluateAll(const std::vector<std::string> &lines, int threads,
            int workers)
{
    SimEngine engine{SimEngine::Options{threads}};
    SimService::Options opts;
    opts.engine = &engine;
    opts.workers = workers;
    SimService service(opts);
    std::vector<std::string> bodies;
    for (const std::string &line : lines)
        bodies.push_back(service.evaluate(line).body);
    return bodies;
}

TEST(ServiceDeterminism, ThreadCountNeverChangesABody)
{
    const std::vector<std::string> lines = requestLines();
    const std::vector<std::string> base =
        evaluateAll(lines, 1, 1);
    for (const std::string &body : base)
        ASSERT_EQ(body.rfind("{\"ok\":true", 0), 0u) << body;
    for (int threads : {2, 7}) {
        const std::vector<std::string> bodies =
            evaluateAll(lines, threads, 2);
        ASSERT_EQ(bodies.size(), base.size());
        for (std::size_t i = 0; i < base.size(); ++i)
            EXPECT_EQ(bodies[i], base[i])
                << threads << " threads, request " << lines[i];
    }
}

TEST(ServiceDeterminism, CacheStateNeverChangesABody)
{
    const std::vector<std::string> lines = requestLines();
    SimEngine engine{SimEngine::Options{2}};
    SimService::Options opts;
    opts.engine = &engine;
    opts.workers = 2;
    SimService service(opts);

    std::vector<std::string> cold;
    for (const std::string &line : lines)
        cold.push_back(service.evaluate(line).body);
    // Warm pass in *reverse* order: every response is cache-served
    // yet byte-identical to its cold twin.
    for (std::size_t i = lines.size(); i-- > 0;)
        EXPECT_EQ(service.evaluate(lines[i]).body, cold[i]);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cacheHits, lines.size());
    EXPECT_EQ(stats.cacheMisses, lines.size());
}

TEST(ServiceDeterminism, ConcurrentArrivalNeverChangesABody)
{
    const std::vector<std::string> lines = requestLines();
    const std::vector<std::string> base = evaluateAll(lines, 1, 1);

    SimEngine engine{SimEngine::Options{2}};
    SimService::Options opts;
    opts.engine = &engine;
    opts.workers = 3;
    SimService service(opts);

    // Four pseudo-clients submit the whole set concurrently, each
    // starting at a different rotation, so identical requests race
    // through the cache / singleflight from interleaved arrivals.
    const int kClients = 4;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t outstanding = kClients * lines.size();
    std::map<std::pair<int, std::size_t>, std::string> bodies;
    for (int c = 0; c < kClients; ++c) {
        for (std::size_t i = 0; i < lines.size(); ++i) {
            const std::size_t idx = (i + c) % lines.size();
            service.submit(
                /*clientId=*/c + 1, lines[idx],
                [&, c, idx](const ServiceResponse &resp) {
                    std::lock_guard<std::mutex> lock(mutex);
                    bodies[{c, idx}] = resp.body;
                    if (--outstanding == 0)
                        done.notify_all();
                });
        }
    }
    std::unique_lock<std::mutex> lock(mutex);
    done.wait(lock, [&] { return outstanding == 0; });

    for (int c = 0; c < kClients; ++c)
        for (std::size_t i = 0; i < lines.size(); ++i)
            EXPECT_EQ((bodies[{c, i}]), base[i])
                << "client " << c << ", request " << lines[i];
}

} // namespace
} // namespace arcc
